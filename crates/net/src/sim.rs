//! The multi-cell spatial network simulator.
//!
//! N stations spread over a grid of APs. Every BSS runs the same
//! 802.11-like DCF as the single-cell simulator — literally: the
//! backoff/feedback state machine is the shared
//! [`MacEngine`](softrate_sim::mac::MacEngine); this module contributes
//! [`SpatialMedium`], the environment where:
//!
//! * **Geometry decides everything.** Carrier sense is physical (a station
//!   defers when another transmitter is audible above a mean-SNR
//!   threshold), so hidden terminals and spatial reuse both *emerge* from
//!   positions rather than from a configured probability. A concurrent
//!   transmission corrupts a reception only when the
//!   signal-to-interference ratio at that receiver falls below the capture
//!   threshold — co-channel interference between overlapping cells, and
//!   clean parallel operation between distant ones.
//! * **Streaming channels.** Frame fates are drawn at transmit time from
//!   per-link [`StreamingLink`]s (Jakes fading + analytic SNR→BER + a
//!   SplitMix64 fate stream). No `LinkTrace` is ever materialized, so
//!   memory stays O(stations) regardless of duration.
//! * **Roaming.** Stations periodically re-evaluate mean RSSI and hand off
//!   to a stronger AP past a hysteresis, with the rate adapter's learned
//!   state either preserved or reset across the handoff (both policies are
//!   first-class, so their cost can be measured).
//! * **Pluggable transport.** The workload is a [`SpatialTraffic`]:
//!   either the native saturated-uplink-UDP fast path (zero queues,
//!   frames materialize on demand — byte-identical to the pre-transport
//!   subsystem), or any [`TransportLayer`] workload — TCP NewReno in
//!   both directions, queue-backed UDP download, bursty on–off sources —
//!   with per-station uplink *and* downlink links, AP transmitters, and
//!   flows that survive roaming handoffs (the TCP endpoints belong to the
//!   station, not to the AP it happens to be associated with).
//!
//! The collision *feedback* semantics reproduce §6.4 exactly as the
//! single-cell simulator does — structurally, because both run the same
//! engine over `softrate_sim::feedback`.

use std::collections::VecDeque;

use softrate_channel::analytic::{FrameSuccessMemo, OracleBands, DETECT_SNR_DB};
use softrate_core::adapter::{DecisionTrigger, RateAdapter, TxAttempt};
use softrate_sim::config::AdapterKind;
use softrate_sim::fault::{FaultConfig, FaultDriver, FaultLoss};
use softrate_sim::mac::{
    ActiveTx, AttemptInfo, HandoffRecord, MacCore, MacEngine, MacEv, MacParams, Medium,
    PhaseProfile, Port, RunReport,
};
use softrate_sim::shard::ShardableMedium;
use softrate_sim::timing::{data_airtime, rts_cts_overhead, CW_MIN, IP_TCP_HEADER};
use softrate_sim::transport::{
    Payload, TransportConfig, TransportEv, TransportHost, TransportLayer,
};
use softrate_telemetry::DecisionEvent;
use softrate_trace::schema::{hash_uniform, FrameFate};

use crate::channel::{fate_from_draw_memo, StreamingLink};
use crate::geometry::Point;
use crate::grid::{dist2, ActiveGrid, TxEntry};
use crate::mobility::MobilityWalker;
use crate::spatial::{HandoffPolicy, SpatialError, SpatialParams, SpatialSpec};
use crate::stream::mix_seed;

/// The workload a spatial deployment carries.
#[derive(Debug, Clone)]
pub enum SpatialTraffic {
    /// Saturated uplink UDP: every station always has a datagram for its
    /// AP. The medium implements this as its native zero-queue fast path
    /// (no AP transmitters, no MAC queues, no transport events) — the
    /// degenerate [`TransportLayer`] configuration, kept inline so the
    /// spatial hot path stays byte-identical to the pre-transport
    /// subsystem (pinned by the unregenerated goldens and the `netscale`
    /// event counts).
    SaturatedUplinkUdp,
    /// A [`TransportLayer`] workload: TCP NewReno upload/download,
    /// queue-backed UDP in either direction, or the bursty on–off source.
    /// Adds per-station downlink links and AP transmitters; per-station
    /// flows survive roaming handoffs under both handoff policies.
    Flows(TransportConfig),
}

/// Configuration of one spatial simulation run.
#[derive(Debug, Clone)]
pub struct SpatialConfig {
    /// Simulated seconds.
    pub duration: f64,
    /// Rate-adaptation algorithm every station runs on its uplink.
    pub adapter: AdapterKind,
    /// On-air bytes per data frame (payload + IP/TCP-sized headers). In
    /// `Flows` mode this is derived from the transport's MSS.
    pub payload_bytes: usize,
    /// Deployment seed: station spawns, trajectories, fading, and fate
    /// streams all derive from it.
    pub seed: u64,
    /// Seed for MAC-layer randomness (backoff draws, collision-detector
    /// verdicts, adapter tie-breaks). Defaults to `seed`; the scenario
    /// engine sets it to the per-run seed while `seed` stays per-spec, so
    /// every adapter in a matrix is compared over identical channel
    /// realizations (§6.1) with independent MAC randomness per run.
    pub mac_seed: u64,
    /// The deployment.
    pub spatial: SpatialSpec,
    /// The workload.
    pub traffic: SpatialTraffic,
    /// Spatial domains for the conservative parallel scheduler
    /// ([`softrate_sim::shard`]). `1` (the default) runs the sequential
    /// engine; any count produces byte-identical results (pinned by the
    /// shard-invariance suite) — only the wall-clock profile changes.
    pub shards: usize,
    /// Cap on shard-pool worker threads (the dispatching thread also
    /// works), or `None` for the host default (cores − 1). The scenario
    /// engine sets this when the run matrix itself is parallel, so
    /// `--threads` × `--shards` does not oversubscribe the host. Sizing
    /// only — results are byte-identical for every value.
    pub shard_workers: Option<usize>,
    /// Same-tick cohort batching (`true`, the default): the engine drains
    /// every event sharing a timestamp before dispatching and lets the
    /// medium warm its memo layers through the contiguous-lane channel
    /// kernels. `false` forces cohort width 1 through the *same* code
    /// path — the `--batch off` escape hatch, byte-identical by
    /// construction (pinned by the batched-vs-unbatched equality suite).
    pub batch: bool,
    /// Saturated-uplink kickoff stagger between consecutive stations,
    /// seconds — spreads the floor's first backoff draws so they do not
    /// all land on one instant. Large ladders scale it down so the whole
    /// floor still kicks off within the first simulated second.
    pub kickoff_stagger_s: f64,
    /// Telemetry recorder configuration; `None` (the default) disables the
    /// recorder entirely — the disabled path must leave every simulation
    /// result byte-identical.
    pub telemetry: Option<softrate_telemetry::RecorderConfig>,
    /// Deterministic fault injection (`softrate-faults`); `None` (the
    /// default) — and an all-`None` table — keep every fault seam
    /// untouched, so faults-off runs stay byte-identical to a build
    /// without the subsystem (pinned by the unregenerated goldens).
    pub faults: Option<FaultConfig>,
}

impl SpatialConfig {
    /// A default-duration saturated-uplink-UDP run of `spatial` under
    /// `adapter`.
    pub fn new(adapter: AdapterKind, spatial: SpatialSpec) -> Self {
        SpatialConfig {
            duration: 10.0,
            adapter,
            payload_bytes: 1440,
            seed: 0x5A7A,
            mac_seed: 0x5A7A,
            spatial,
            traffic: SpatialTraffic::SaturatedUplinkUdp,
            shards: 1,
            shard_workers: None,
            batch: true,
            kickoff_stagger_s: 2e-4,
            telemetry: None,
            faults: None,
        }
    }

    /// Data-frame size on the air, bits.
    pub fn frame_bits(&self) -> usize {
        self.payload_bytes * 8
    }
}

/// One station's medium-side state (the rate adapter and retry state
/// live in the engine's matching [`Port`], the contention window in the
/// core's dense `cw` array).
struct Station {
    /// Associated AP.
    ap: usize,
    /// Association epoch (increments on every handoff; keys fate streams).
    epoch: u64,
    /// Streaming channel to the current AP (both directions: the fading
    /// field between two places is reciprocal, and the fate stream is
    /// shared — the single-threaded event loop makes interleaved draws
    /// deterministic).
    link: StreamingLink,
    /// Handoff decided while a frame was in flight; applied at outcome.
    pending_handoff: Option<usize>,
    delivered: u64,
}

/// Per-attempt data: the BSS, the receiver (an AP for uplink frames, a
/// station for downlink), the mean signal SNR at start, and the
/// transmitter's position at start (the grid key, and the anchor the
/// drift-padded pruning reasons from).
#[derive(Debug, Clone, Copy)]
struct SpatialTx {
    /// The BSS this transmission belongs to (receiver AP for uplink,
    /// transmitter AP for downlink).
    ap: usize,
    /// `None`: the receiver is AP `ap` (uplink). `Some(st)`: the receiver
    /// is station `st` (downlink).
    rx_station: Option<usize>,
    /// Mean (path-loss only) signal SNR at the receiver at start, dB.
    sig_snr_db: f64,
    /// Transmitter position at transmit start.
    start_pos: Point,
    /// What the frame carries (`Flows` mode; the saturated fast path's
    /// frames are all anonymous datagrams).
    payload: Payload,
    /// A jammer burst crushed this reception's SIR at transmit time
    /// (resolved as a [`FaultLoss::Jamming`] loss at the feedback
    /// window). Always `false` faults-off.
    jammed: bool,
}

/// Medium-specific events: periodic association re-evaluation, plus the
/// transport layer's timers and wired deliveries (`Flows` mode only).
#[derive(Debug, Clone, Copy)]
enum SpatialEv {
    /// Association re-evaluation for one station.
    Roam {
        /// The station.
        st: usize,
    },
    /// A transport-layer event.
    Transport(TransportEv),
    /// A fault-lifecycle event (`softrate-faults`).
    Fault(FaultEv),
}

/// One scheduled fault-lifecycle event. All of them are pre-scheduled at
/// kickoff into the ordinary near event queue, so they dispatch in exact
/// global `(time, seq)` order on both the sequential and the sharded
/// scheduler — shard counts cannot reorder faults.
#[derive(Debug, Clone, Copy)]
enum FaultEv {
    /// AP `ap` dies: queued downlink frames drop with accounting, and
    /// every reception in its BSS resolves as an outage until restart.
    ApDown {
        /// The AP.
        ap: usize,
    },
    /// AP `ap` restarts (and resumes serving whatever queued up).
    ApUp {
        /// The AP.
        ap: usize,
    },
    /// Churn joiner `st` becomes active and starts transmitting.
    Join {
        /// The station.
        st: usize,
    },
    /// Churn leaver `st` falls silent (after its in-flight frame, if
    /// any, resolves).
    Leave {
        /// The station.
        st: usize,
    },
    /// Wave boundary marker for the metrics stream: one start/end pair
    /// per join/leave wave, so interval fault tags cover the whole ramp
    /// instead of flapping per station.
    ChurnPhase {
        /// Join wave (`true`) or leave wave (`false`).
        join: bool,
        /// Wave start (`true`) or end (`false`).
        start: bool,
    },
    /// Jammer burst on/off.
    Jam {
        /// Burst starts (`true`) or ends (`false`).
        on: bool,
    },
    /// Noise-floor step on/off.
    Noise {
        /// Step starts (`true`) or ends (`false`).
        on: bool,
    },
}

/// Salt for the churn join-jitter draw (station → offset within the
/// join ramp).
const JOIN_SALT: u64 = 0x4A4F_494E; // "JOIN"
/// Salt for the churn leave-jitter draw.
const LEAVE_SALT: u64 = 0x4C45_4156; // "LEAV"

/// Live fault-injection state. `None` on the medium when faults are off
/// — every seam that consults it is a single `Option` check, keeping
/// faults-off runs byte-identical to a build without the subsystem.
struct FaultState {
    /// The lowered fault schedule, as configured.
    config: FaultConfig,
    /// Which APs are currently dark.
    ap_down: Vec<bool>,
    /// When each dark AP went dark (valid while `ap_down[a]` holds;
    /// the reassociation rows measure recovery time against it).
    ap_down_since: Vec<f64>,
    /// Cached `ap_down.iter().any()` — the roam path branches on it.
    any_ap_down: bool,
    /// Churn joiners that have not joined yet: no kickoff, no port picks.
    dormant: Vec<bool>,
    /// Churn leavers that have left: idle forever after.
    left: Vec<bool>,
    /// Noise-floor rise currently applied to every link, dB (0 idle).
    noise_delta_db: f64,
    /// Whether the jammer burst is currently on the air.
    jammer_on: bool,
    /// Seed for the churn join/leave jitter draws.
    seed: u64,
}

type Core = MacCore<SpatialEv, SpatialTx>;

/// The `t` sentinel that can never equal a real query time's bits (the
/// event loop never produces NaN timestamps), marking memo slots empty.
const NO_TIME: u64 = u64::MAX; // f64::NAN bit patterns vary; u64::MAX is one of them

/// The flow-mode wireless fabric: MAC queues for both directions plus the
/// shared transport layer above them.
///
/// Link/port ids: `s` in `0..n` is station `s`'s uplink (station → its
/// current AP); `n + s` is its downlink (current AP → station). Sender
/// ids: `0..n` are stations, `n + a` is AP `a`. A station's downlink
/// queue belongs to whichever AP it is associated with *right now* — a
/// handoff re-homes the queue (and its in-flight TCP state) wholesale,
/// which is what lets flows survive roaming.
struct FlowNet {
    transport: TransportLayer,
    /// MAC queue per link (uplinks then downlinks).
    queues: Vec<VecDeque<Payload>>,
    /// Stations currently associated with each AP (downlink service set).
    ap_members: Vec<Vec<usize>>,
    /// Per-AP round-robin cursor over its members.
    ap_rr: Vec<usize>,
    /// Whether each port has a frame on the air or awaiting its feedback
    /// window. A handoff can re-home a downlink queue while its front is
    /// in flight from the old AP; `pick_port` skips in-flight ports so
    /// the queue front is never served by two transmitters at once.
    port_inflight: Vec<bool>,
    /// The port each sender's current (or last) attempt left from —
    /// `after_outcome` uses it to clear the in-flight flag and to wake
    /// the port's new owner when a handoff re-homed it mid-flight.
    sender_port: Vec<usize>,
}

/// The [`TransportHost`] over the spatial medium: queue surface plus
/// sender pokes (a frame landing on an idle sender's queue schedules its
/// channel access).
struct SpatialHost<'a> {
    queues: &'a mut [VecDeque<Payload>],
    stations: &'a [Station],
    core: &'a mut Core,
    n: usize,
}

impl TransportHost for SpatialHost<'_> {
    fn now(&self) -> f64 {
        self.core.now()
    }

    fn queue_len(&self, link: usize) -> usize {
        self.queues[link].len()
    }

    fn enqueue(&mut self, link: usize, payload: Payload) {
        self.queues[link].push_back(payload);
        self.core.lanes.queue_depth[link] = self.queues[link].len() as u32;
        if self.core.recorder.is_some() {
            let station = station_of_port(self.n, link);
            let depth = self.queues[link].len();
            let now = self.core.now();
            if let Some(rec) = self.core.recorder.as_deref_mut() {
                rec.on_enqueue(now, station, depth);
            }
        }
        let sender = if link < self.n {
            link
        } else {
            self.n + self.stations[link - self.n].ap
        };
        if !self.core.lanes.busy[sender] && !self.core.lanes.start_pending[sender] {
            let cw = self.core.lanes.cw[link];
            self.core.schedule_tx_start(sender, None, cw);
        }
    }

    fn schedule_in(&mut self, delay: f64, ev: TransportEv) {
        self.core
            .events
            .schedule_in(delay, MacEv::Medium(SpatialEv::Transport(ev)));
    }

    fn recorder(&mut self) -> Option<&mut softrate_telemetry::Recorder> {
        self.core.recorder.as_deref_mut()
    }
}

/// The multi-cell geometric environment with streaming channels.
///
/// Its hot passes run on an exact-semantics fast path (DESIGN.md §7):
/// conservative pruning radii inverted from the path-loss model, a
/// uniform grid over active transmitters, and per-event memo caches for
/// positions, station→AP SNRs, and fading envelopes. Every skipped
/// candidate provably fails the exact check it skipped, and every cache
/// hit returns the bit-identical value a fresh evaluation would — the
/// unregenerated goldens in `tests/goldens/` pin that end to end.
struct SpatialMedium {
    cfg: SpatialConfig,
    params: SpatialParams,
    stations: Vec<Station>,
    /// Per-station resumable mobility cursors (amortized O(1) positions).
    walkers: Vec<MobilityWalker>,
    /// `Flows`-mode state; `None` on the saturated-uplink fast path.
    flows: Option<FlowNet>,
    /// Active transmitters bucketed by transmit-start position.
    grid: ActiveGrid,
    /// Conservative (padded) radius beyond which a transmitter cannot be
    /// sensed: `range_for_threshold(sense_snr_db)`.
    sense_radius_m: f64,
    /// Squared certainly-audible / certainly-inaudible radii for the
    /// sensing threshold (`range_band(sense_snr_db)`): the sense loop
    /// classifies by squared distance and only evaluates the exact
    /// path-loss expression inside the vanishing band between them.
    sense_lo2: f64,
    sense_hi2: f64,
    /// The same bands widened by the drift pad, valid against a
    /// transmitter's *insert-time* position: inside `sense_lo_ins2` the
    /// transmitter is audible wherever it drifted to; outside
    /// `sense_hi_ins2` it is inaudible wherever it drifted to. Between
    /// them the current position decides (a band a few centimeters wide —
    /// almost never entered).
    sense_lo_ins2: f64,
    sense_hi_ins2: f64,
    /// Whether carrier sense walks grid buckets (large floors where the
    /// sensing disk covers a small fraction of the area) or the
    /// end-sorted active list (dense floors where most of the area is
    /// audible anyway and the first audible hit ends the search). Both
    /// paths visit a superset of the audible set and apply the identical
    /// classification, so the choice is invisible in the results.
    sense_via_grid: bool,
    /// Active transmissions sorted by `end` descending (the first audible
    /// entry in this order carries the defer-until maximum).
    by_end: Vec<TxEntry>,
    /// Conservative radius beyond which interference is below the 0 dB
    /// noise floor: `range_for_threshold(0.0)`.
    interference_radius_m: f64,
    /// Maximum distance a station can drift while its frame is on the air
    /// (mobility speed × slowest-rate airtime, padded) — added to every
    /// radius compared against a transmit-*start* position.
    drift_pad_m: f64,
    /// Per-station `(t bits, position)` memo.
    pos_cache: Vec<(u64, Point)>,
    /// Per-station `(t bits, ap, mean SNR)` memo — one slot per station
    /// rather than a station×AP matrix, so memory stays O(stations) on
    /// ladder-scale floors (100k stations × 625 APs would be a gigabyte).
    /// Value-transparent: a miss recomputes the identical value.
    snr_ap_cache: Vec<(u64, u32, f64)>,
    /// Per-station `(epoch, t bits, envelope dB)` memo.
    env_cache: Vec<(u64, u64, f64)>,
    /// Shared memo over the analytic BER/success kernels.
    fs_memo: FrameSuccessMemo,
    /// Scratch for [`Medium::prepare_cohort`] (reused, allocation-free):
    /// `(station, instant)` envelope evaluations the cohort will need.
    coh_env: Vec<(u32, f64)>,
    /// Scratch: gathered [`FrameSuccessMemo::eval_many`] key lanes and
    /// the (discarded) output pairs for the cohort's outcome members.
    coh_snr: Vec<f64>,
    coh_rate: Vec<u32>,
    coh_bits: Vec<u64>,
    coh_out: Vec<(f64, f64)>,
    /// The omniscient oracle as exact threshold compares.
    oracle: OracleBands,
    /// Scratch: carrier-sense candidates (reused, allocation-free).
    sense_scratch: Vec<TxEntry>,
    /// Positions of active-set mutations (insert/remove) since the last
    /// window barrier — the sharded scheduler's sense-invalidation feed.
    /// Empty and unmaintained (`log_muts` off) on sequential runs.
    mut_log: Vec<(f64, f64)>,
    log_muts: bool,
    /// Scratch: per-AP "the new transmitter is within interference range
    /// of this AP" flags (reused).
    ap_near: Vec<bool>,
    /// Live fault-injection state (`None` faults-off).
    faults: Option<FaultState>,
    // statistics
    inter_cell_corruptions: u64,
    handoffs: u64,
    initial_assoc: Vec<usize>,
    handoff_log: Vec<HandoffRecord>,
}

impl SpatialMedium {
    /// The link's fading process is keyed by its endpoints only (a
    /// physical field between two places); the fate stream additionally by
    /// the association epoch, so re-associating never replays coin flips.
    fn make_link(&self, st: usize, ap: usize, epoch: u64) -> StreamingLink {
        let pair = mix_seed(self.cfg.seed ^ 0x4C49_4E4B, ((st as u64) << 20) | ap as u64);
        StreamingLink::new(pair, mix_seed(pair, 0xFA7E ^ epoch), self.params.doppler_hz)
    }

    /// Position of station `st` at `t`: the per-event memo over the
    /// resumable walker (identical to `params.station_pos`).
    fn pos_at(&mut self, st: usize, t: f64) -> Point {
        let bits = t.to_bits();
        let (cached, p) = self.pos_cache[st];
        if cached == bits {
            return p;
        }
        let p = self.walkers[st].position(&self.params.mobility, &self.params.bounds, t);
        self.pos_cache[st] = (bits, p);
        p
    }

    /// Position of transmitter `sender` at `t`: a walking station, or a
    /// fixed AP (`Flows`-mode senders `n..n + n_aps`).
    fn tx_pos(&mut self, sender: usize, t: f64) -> Point {
        if sender < self.params.n_stations {
            self.pos_at(sender, t)
        } else {
            self.params.aps[sender - self.params.n_stations]
        }
    }

    /// Mean SNR between station `st` (at `t`) and AP `ap`: the ordered-
    /// pair memo over `params.snr_between` (APs never move, so the pair
    /// key is `(station, ap)` and the freshness key is `t`).
    fn snr_to_ap(&mut self, st: usize, ap: usize, t: f64) -> f64 {
        let bits = t.to_bits();
        let (cached, cached_ap, v) = self.snr_ap_cache[st];
        if cached == bits && cached_ap == ap as u32 {
            return v;
        }
        let pos = self.pos_at(st, t);
        let v = self.params.snr_between(pos, self.params.aps[ap]);
        self.snr_ap_cache[st] = (bits, ap as u32, v);
        v
    }

    /// Mean SNR of transmitter `sender` heard at AP `ap` at `t`: the
    /// memoized station→AP path for stations, the (static) AP→AP path for
    /// `Flows`-mode AP transmitters.
    fn snr_sender_to_ap(&mut self, sender: usize, ap: usize, t: f64) -> f64 {
        if sender < self.params.n_stations {
            self.snr_to_ap(sender, ap, t)
        } else {
            let from = self.params.aps[sender - self.params.n_stations];
            self.params.snr_between(from, self.params.aps[ap])
        }
    }

    /// Fading envelope of `st`'s current link at `t`, dB — memoized so
    /// the oracle audit at transmit time and the fate draw at the
    /// feedback window share one Jakes evaluation. Keyed by association
    /// epoch (a handoff swaps the fading process).
    fn env_at(&mut self, st: usize, t: f64) -> f64 {
        let bits = t.to_bits();
        let epoch = self.stations[st].epoch;
        let (e, cached, v) = self.env_cache[st];
        if e == epoch && cached == bits {
            return v;
        }
        let v = self.stations[st].link.envelope_db(t);
        self.env_cache[st] = (epoch, bits, v);
        v
    }

    /// The station whose link a port serves (uplink ports are the station
    /// id; downlink ports are offset by the station count).
    fn station_of_port(&self, port: usize) -> usize {
        station_of_port(self.params.n_stations, port)
    }

    /// Whether the transmission behind `e` is audible at `pos` right now
    /// — identical verdict to evaluating `snr_between(current tx
    /// position, pos) >= sense_snr_db` directly. The insert-position
    /// bands (drift-widened) settle almost every candidate without
    /// touching its walker; the thin in-between band falls through to the
    /// current position, and only its own guard band evaluates the exact
    /// path-loss expression.
    fn audible_at(&mut self, e: &TxEntry, pos: Point, now: f64) -> bool {
        let d2_ins = dist2(e.pos, pos);
        if d2_ins <= self.sense_lo_ins2 {
            return true;
        }
        if d2_ins >= self.sense_hi_ins2 {
            return false;
        }
        let tpos = self.tx_pos(e.sender, now);
        let d2 = dist2(tpos, pos);
        d2 <= self.sense_lo2
            || (d2 < self.sense_hi2
                && self.params.snr_between(tpos, pos) >= self.params.sense_snr_db)
    }

    /// Transmitter position at `t` from *private* mobility cursors (the
    /// sharded scheduler's worker path). Walker positions are a pure
    /// function of `t` (pinned against `position_at` by tests), so a
    /// private cursor returns the bit-identical point the medium's own
    /// walker and `pos_cache` would — without touching either.
    fn walker_pos(&self, walkers: &mut [MobilityWalker], sender: usize, t: f64) -> Point {
        if sender < self.params.n_stations {
            walkers[sender].position(&self.params.mobility, &self.params.bounds, t)
        } else {
            self.params.aps[sender - self.params.n_stations]
        }
    }

    /// [`SpatialMedium::audible_at`] against private mobility cursors:
    /// the identical band classification and exact fallthrough, memo-free.
    fn audible_pure(
        &self,
        walkers: &mut [MobilityWalker],
        e: &TxEntry,
        pos: Point,
        now: f64,
    ) -> bool {
        let d2_ins = dist2(e.pos, pos);
        if d2_ins <= self.sense_lo_ins2 {
            return true;
        }
        if d2_ins >= self.sense_hi_ins2 {
            return false;
        }
        let tpos = self.walker_pos(walkers, e.sender, now);
        let d2 = dist2(tpos, pos);
        d2 <= self.sense_lo2
            || (d2 < self.sense_hi2
                && self.params.snr_between(tpos, pos) >= self.params.sense_snr_db)
    }

    /// Carrier sense over the end-descending active list: the first
    /// audible entry carries the maximal end time, so the scan stops
    /// there. Dense floors resolve in ~1 candidate.
    fn sense_sorted(&mut self, sender: usize, pos: Point, now: f64) -> Option<f64> {
        for i in 0..self.by_end.len() {
            let e = self.by_end[i];
            if e.sender == sender {
                continue;
            }
            if self.audible_at(&e, pos, now) {
                return Some(e.end);
            }
        }
        None
    }

    /// Carrier sense over the grid buckets intersecting the sensing disk:
    /// large floors visit a small fraction of the active set. Candidates
    /// that cannot raise the accumulated horizon are skipped before any
    /// classification.
    fn sense_via_buckets(&mut self, sender: usize, pos: Point, now: f64) -> Option<f64> {
        let mut scratch = std::mem::take(&mut self.sense_scratch);
        scratch.clear();
        self.grid
            .for_each_in_disk(pos, self.sense_radius_m + self.drift_pad_m, |e| {
                if e.sender != sender {
                    scratch.push(*e);
                }
            });
        let mut sensed_until: Option<f64> = None;
        for e in &scratch {
            if sensed_until.is_some_and(|u| e.end <= u) {
                continue;
            }
            if self.audible_at(e, pos, now) {
                sensed_until = Some(sensed_until.map_or(e.end, |u: f64| u.max(e.end)));
            }
        }
        self.sense_scratch = scratch;
        sensed_until
    }

    /// The AP with the strongest mean RSSI at `st`'s position at `t` —
    /// `params.best_ap` routed through the SNR memo (same comparisons,
    /// same first-wins tie-break).
    fn best_ap_at(&mut self, st: usize, t: f64) -> (usize, f64) {
        let mut best = 0;
        let mut best_rssi = f64::NEG_INFINITY;
        for a in 0..self.params.aps.len() {
            let rssi = self.snr_to_ap(st, a, t);
            if rssi > best_rssi {
                best = a;
                best_rssi = rssi;
            }
        }
        (best, best_rssi)
    }

    fn make_adapter(&self, st: usize) -> Box<dyn RateAdapter> {
        // The omniscient oracle needs the station's *current* link, which
        // changes at handoff; the medium injects the rate at transmit time
        // instead (see `begin_attempt`), so the closure here is never the
        // source of truth.
        self.cfg.adapter.build_with_oracle(
            self.cfg.frame_bits(),
            self.cfg.payload_bytes,
            mix_seed(self.cfg.mac_seed ^ 0xADA7, st as u64),
            Box::new(|_| 0),
        )
    }

    /// The downlink (AP → station) adapter for station `st`'s flow
    /// (`Flows` mode only; distinct seed salt so uplink and downlink
    /// tie-breaks are independent).
    fn make_downlink_adapter(&self, st: usize) -> Box<dyn RateAdapter> {
        self.cfg.adapter.build_with_oracle(
            self.cfg.frame_bits(),
            self.cfg.payload_bytes,
            mix_seed(self.cfg.mac_seed ^ 0xADA7_D04E, st as u64),
            Box::new(|_| 0),
        )
    }

    fn apply_handoff(&mut self, core: &mut Core, st: usize, to: usize, now: f64) {
        let from = self.stations[st].ap;
        if from == to {
            return;
        }
        let epoch = self.stations[st].epoch + 1;
        self.stations[st].ap = to;
        self.stations[st].epoch = epoch;
        self.stations[st].link = self.make_link(st, to, epoch);
        let reset = matches!(self.params.roaming, Some((_, _, HandoffPolicy::Reset)));
        if reset {
            core.ports[st].adapter = self.make_adapter(st);
        }
        core.lanes.retries[st] = 0;
        core.lanes.cw[st] = CW_MIN;
        // Flow-mode bookkeeping: the downlink queue (and the flow's TCP
        // state with it) re-homes to the new AP; the downlink adapter
        // follows the handoff policy like the uplink one.
        let n = self.params.n_stations;
        if self.flows.is_some() {
            if reset {
                core.ports[n + st].adapter = self.make_downlink_adapter(st);
            }
            core.lanes.retries[n + st] = 0;
            core.lanes.cw[n + st] = CW_MIN;
        }
        if let Some(fl) = self.flows.as_mut() {
            fl.ap_members[from].retain(|&m| m != st);
            fl.ap_members[to].push(st);
            // Wake the new AP if the re-homed downlink queue has frames
            // (the old AP no longer serves it; without a poke a pure
            // download flow would stall until unrelated traffic arrives).
            // Not while the old AP still has a frame of this port on the
            // air or awaiting feedback: the queue front belongs to that
            // transmission, and serving it twice would desync the queue
            // (`after_outcome` wakes the new owner when it resolves).
            let ap_sender = n + to;
            if !fl.port_inflight[n + st]
                && !fl.queues[n + st].is_empty()
                && !core.lanes.busy[ap_sender]
                && !core.lanes.start_pending[ap_sender]
            {
                let cw = core.lanes.cw[n + st];
                core.schedule_tx_start(ap_sender, None, cw);
            }
        }
        self.handoffs += 1;
        self.handoff_log.push(HandoffRecord {
            t: now,
            station: st,
            from,
            to,
        });
        if let Some(rec) = core.recorder.as_deref_mut() {
            rec.on_handoff(now, st);
        }
        // A station fleeing a dark AP is the resilience headline: record
        // its time-to-reassociate against the outage start.
        if let Some(fs) = &self.faults {
            if fs.ap_down[from] {
                if let Some(rec) = core.recorder.as_deref_mut() {
                    rec.on_reassoc(now, st, from, to, now - fs.ap_down_since[from]);
                }
            }
        }
        // Decision ledger: a handoff is a rate-adaptation event. Under
        // Preserve the adapter carries its state to the new AP — one
        // marker row per affected port, rate unchanged. Under Reset the
        // adapter was rebuilt; the engine files the resulting rate under
        // `handoff_reset` at the port's next transmission (the fresh
        // adapter's choice isn't observable here without perturbing it).
        if core.ledger.ctx.is_enabled() {
            let mut ports = vec![st];
            if self.flows.is_some() {
                ports.push(n + st);
            }
            for port in ports {
                if reset {
                    core.lanes.handoff_reset[port] = true;
                    continue;
                }
                let Some(rate) = core.lanes.last_rate[port] else {
                    continue; // never transmitted: nothing to mark
                };
                let adapter = core.ports[port].adapter.name();
                if let Some(rec) = core.recorder.as_deref_mut() {
                    rec.on_decision(
                        now,
                        DecisionEvent {
                            station: st,
                            port,
                            adapter,
                            old_rate: rate,
                            new_rate: rate,
                            trigger: DecisionTrigger::HandoffPreserve.name(),
                            snr_db: None,
                            ber: None,
                            reason: "ap-change",
                        },
                    );
                }
            }
        }
    }

    /// Applies `st`'s deferred handoff once neither of its links has a
    /// frame in flight (the station's own sender idle, and — in `Flows`
    /// mode — no downlink frame of its port on the air or awaiting
    /// feedback): every launched attempt resolves against the link state
    /// it was launched on before the association changes underneath it.
    fn try_apply_pending_handoff(&mut self, core: &mut Core, st: usize) {
        if self.stations[st].pending_handoff.is_none() || core.lanes.busy[st] {
            return;
        }
        let n = self.params.n_stations;
        if self
            .flows
            .as_ref()
            .is_some_and(|fl| fl.port_inflight[n + st])
        {
            return;
        }
        let to = self.stations[st].pending_handoff.take().expect("checked");
        let now = core.now();
        self.apply_handoff(core, st, to, now);
    }

    /// AP death: its members' queued downlink frames are lost, with full
    /// accounting — the transport hears about every drop (TCP reacts with
    /// its ordinary loss machinery) and the count lands in the fault row.
    /// The in-flight queue front (a frame already on the air) is left for
    /// the MAC to resolve; it lands as an `outage` loss with the AP dark.
    /// The transport's reaction may legally re-enqueue (a retransmission);
    /// the drop count is taken up front so those new frames wait for the
    /// AP to return instead of dying with it.
    fn drop_downlink_queues(&mut self, core: &mut Core, ap: usize) -> u64 {
        let n = self.params.n_stations;
        if self.flows.is_none() {
            return 0;
        }
        let members: Vec<usize> = self.flows.as_ref().expect("checked").ap_members[ap].clone();
        let mut dropped = 0u64;
        for st in members {
            let port = n + st;
            let fl = self.flows.as_mut().expect("checked");
            let protected = if fl.port_inflight[port] {
                fl.queues[port].pop_front()
            } else {
                None
            };
            let mut to_drop = fl.queues[port].len();
            while to_drop > 0 {
                to_drop -= 1;
                dropped += 1;
                let fl = self.flows.as_mut().expect("checked");
                fl.queues[port].pop_front();
                let FlowNet {
                    transport, queues, ..
                } = fl;
                let mut host = SpatialHost {
                    queues: &mut *queues,
                    stations: &self.stations,
                    core: &mut *core,
                    n,
                };
                transport.on_frame_dropped(&mut host, st);
            }
            if let Some(p) = protected {
                self.flows.as_mut().expect("checked").queues[port].push_front(p);
            }
            core.lanes.queue_depth[port] =
                self.flows.as_ref().expect("checked").queues[port].len() as u32;
        }
        dropped
    }

    /// An AP restart: poke the returned transmitter if any member's
    /// downlink queue accumulated frames while it was dark.
    fn wake_ap(&mut self, core: &mut Core, ap: usize) {
        let n = self.params.n_stations;
        let Some(fl) = self.flows.as_ref() else {
            return;
        };
        let sender = n + ap;
        if core.lanes.busy[sender] || core.lanes.start_pending[sender] {
            return;
        }
        for &st in &fl.ap_members[ap] {
            if !fl.queues[n + st].is_empty() && !fl.port_inflight[n + st] {
                let cw = core.lanes.cw[n + st];
                core.schedule_tx_start(sender, None, cw);
                return;
            }
        }
    }

    /// Dispatches one scheduled fault-lifecycle event. Every effect is a
    /// plain data write applied at dispatch time (exact global event
    /// order), so the sharded scheduler replays faults identically; none
    /// of them touch carrier sense or consume engine randomness.
    fn on_fault_event(&mut self, core: &mut Core, fev: FaultEv) {
        let now = core.now();
        match fev {
            FaultEv::ApDown { ap } => {
                {
                    let fs = self
                        .faults
                        .as_mut()
                        .expect("fault event implies fault state");
                    fs.ap_down[ap] = true;
                    fs.ap_down_since[ap] = now;
                    fs.any_ap_down = true;
                }
                // Flag first, then drain: a drain-triggered retransmission
                // that wakes the dying AP is refused by `pick_port`.
                let dropped = self.drop_downlink_queues(core, ap);
                if let Some(rec) = core.recorder.as_deref_mut() {
                    rec.on_fault(
                        now,
                        "ap_outage",
                        "start",
                        format!("ap={ap} dropped_queued={dropped}"),
                    );
                }
            }
            FaultEv::ApUp { ap } => {
                let fs = self
                    .faults
                    .as_mut()
                    .expect("fault event implies fault state");
                fs.ap_down[ap] = false;
                fs.any_ap_down = fs.ap_down.iter().any(|&d| d);
                if let Some(rec) = core.recorder.as_deref_mut() {
                    rec.on_fault(now, "ap_outage", "end", format!("ap={ap}"));
                }
                self.wake_ap(core, ap);
            }
            FaultEv::Join { st } => {
                let fs = self
                    .faults
                    .as_mut()
                    .expect("fault event implies fault state");
                if !fs.dormant[st] {
                    return;
                }
                fs.dormant[st] = false;
                // Churn runs on the saturated-uplink workload (validated
                // at construction): the joiner's first channel access
                // starts here instead of at kickoff.
                if !core.lanes.busy[st] && !core.lanes.start_pending[st] {
                    let cw = core.lanes.cw[st];
                    core.schedule_tx_start(st, None, cw);
                }
            }
            FaultEv::Leave { st } => {
                let fs = self
                    .faults
                    .as_mut()
                    .expect("fault event implies fault state");
                fs.left[st] = true;
                // An in-flight frame resolves normally; `pick_port`
                // refuses every later access, so the sender goes idle.
            }
            FaultEv::ChurnPhase { join, start } => {
                let c = self
                    .faults
                    .as_ref()
                    .and_then(|f| f.config.churn)
                    .expect("churn phase implies churn config");
                let (label, detail) = if join {
                    ("churn_join", format!("join_count={}", c.join_count))
                } else {
                    ("churn_leave", format!("leave_count={}", c.leave_count))
                };
                if let Some(rec) = core.recorder.as_deref_mut() {
                    rec.on_fault(now, label, if start { "start" } else { "end" }, detail);
                }
            }
            FaultEv::Jam { on } => {
                let fs = self
                    .faults
                    .as_mut()
                    .expect("fault event implies fault state");
                fs.jammer_on = on;
                let j = fs.config.jammer.expect("jam event implies jammer config");
                if let Some(rec) = core.recorder.as_deref_mut() {
                    rec.on_fault(
                        now,
                        "jammer",
                        if on { "start" } else { "end" },
                        format!("x={} y={} power_db={}", j.x, j.y, j.power_db),
                    );
                }
            }
            FaultEv::Noise { on } => {
                let fs = self
                    .faults
                    .as_mut()
                    .expect("fault event implies fault state");
                let s = fs
                    .config
                    .noise_step
                    .expect("noise event implies noise config");
                fs.noise_delta_db = if on { s.delta_db } else { 0.0 };
                if let Some(rec) = core.recorder.as_deref_mut() {
                    rec.on_fault(
                        now,
                        "noise_step",
                        if on { "start" } else { "end" },
                        format!("delta_db={}", s.delta_db),
                    );
                }
            }
        }
    }
}

impl Medium for SpatialMedium {
    type Event = SpatialEv;
    type TxInfo = SpatialTx;

    fn kickoff(&mut self, core: &mut Core) {
        let n = self.params.n_stations;
        // Pre-schedule every fault-lifecycle event. They ride the
        // ordinary near event queue, so both schedulers dispatch them in
        // exact global `(time, seq)` order — shard counts cannot reorder
        // faults relative to traffic.
        if let Some(fs) = &self.faults {
            let c = fs.config;
            let mut at = |t: f64, fev: FaultEv| {
                core.events
                    .schedule(t, MacEv::Medium(SpatialEv::Fault(fev)));
            };
            if let Some(o) = c.ap_outage {
                at(o.at, FaultEv::ApDown { ap: o.ap });
                at(o.at + o.duration, FaultEv::ApUp { ap: o.ap });
            }
            if let Some(j) = c.jammer {
                at(j.at, FaultEv::Jam { on: true });
                at(j.at + j.duration, FaultEv::Jam { on: false });
            }
            if let Some(s) = c.noise_step {
                at(s.at, FaultEv::Noise { on: true });
                if let Some(d) = s.duration {
                    at(s.at + d, FaultEv::Noise { on: false });
                }
            }
            if let Some(ch) = c.churn {
                if ch.join_count > 0 {
                    at(
                        ch.join_at,
                        FaultEv::ChurnPhase {
                            join: true,
                            start: true,
                        },
                    );
                    for s in n.saturating_sub(ch.join_count)..n {
                        let u = hash_uniform(&[fs.seed, JOIN_SALT, s as u64]);
                        at(ch.join_at + ch.join_ramp_s * u, FaultEv::Join { st: s });
                    }
                    at(
                        ch.join_at + ch.join_ramp_s,
                        FaultEv::ChurnPhase {
                            join: true,
                            start: false,
                        },
                    );
                }
                if ch.leave_count > 0 {
                    at(
                        ch.leave_at,
                        FaultEv::ChurnPhase {
                            join: false,
                            start: true,
                        },
                    );
                    for s in 0..ch.leave_count.min(n) {
                        let u = hash_uniform(&[fs.seed, LEAVE_SALT, s as u64]);
                        at(ch.leave_at + ch.leave_ramp_s * u, FaultEv::Leave { st: s });
                    }
                    at(
                        ch.leave_at + ch.leave_ramp_s,
                        FaultEv::ChurnPhase {
                            join: false,
                            start: false,
                        },
                    );
                }
            }
        }
        match self.flows.as_mut() {
            None => {
                // Saturated uplink: slight stagger so the whole floor
                // doesn't draw backoff at the exact same instant. Churn
                // joiners stay dormant; their `Join` event kicks them.
                let stagger = self.cfg.kickoff_stagger_s;
                for s in 0..n {
                    if self.faults.as_ref().is_some_and(|f| f.dormant[s]) {
                        continue;
                    }
                    let cw = core.lanes.cw[s];
                    core.schedule_tx_start(s, Some(s as f64 * stagger), cw);
                }
            }
            Some(fl) => {
                // Flow traffic: the transport schedules its own staggered
                // kicks and primes the queues (whose enqueues wake the
                // senders).
                let FlowNet {
                    transport, queues, ..
                } = fl;
                let mut host = SpatialHost {
                    queues,
                    stations: &self.stations,
                    core,
                    n,
                };
                transport.kickoff(&mut host);
            }
        }
        if let Some((_, interval, _)) = self.params.roaming {
            for s in 0..n {
                let first = interval * (1.0 + s as f64 / n as f64);
                core.events
                    .schedule(first, MacEv::Medium(SpatialEv::Roam { st: s }));
            }
        }
    }

    /// Saturated uplink: every station always has a frame for its AP.
    /// Flow traffic: stations serve their uplink queue; APs round-robin
    /// over their associated stations' downlink queues.
    fn pick_port(&mut self, sender: usize) -> Option<usize> {
        let n = self.params.n_stations;
        if let Some(fs) = &self.faults {
            // Dormant joiners and departed leavers never transmit; a
            // dark AP transmits nothing (its queues drained at death,
            // and whatever re-accumulates waits for the restart).
            if sender < n {
                if fs.dormant[sender] || fs.left[sender] {
                    return None;
                }
            } else if fs.ap_down[sender - n] {
                return None;
            }
        }
        match &self.flows {
            None => Some(sender),
            Some(fl) => {
                // A port whose frame is on the air (or awaiting feedback)
                // is never picked — after a mid-flight handoff the new AP
                // must not serve the queue front the old AP still carries.
                if sender < n {
                    (!fl.queues[sender].is_empty() && !fl.port_inflight[sender]).then_some(sender)
                } else {
                    let a = sender - n;
                    let members = &fl.ap_members[a];
                    let m = members.len();
                    for k in 0..m {
                        let st = members[(fl.ap_rr[a] + k) % m];
                        if !fl.queues[n + st].is_empty() && !fl.port_inflight[n + st] {
                            return Some(n + st);
                        }
                    }
                    None
                }
            }
        }
    }

    /// Physical carrier sense: defer while any foreign transmitter is
    /// audible above the sensing threshold.
    ///
    /// Fast path: an idle medium returns immediately; otherwise the pass
    /// visits only candidates the pruning radii admit and classifies
    /// audibility by squared distance (exact path-loss math only inside
    /// the guard bands). The result — the max end time over exactly the
    /// audible set — is unchanged.
    fn carrier_sense(&mut self, core: &Core, sender: usize) -> Option<f64> {
        if core.active.is_empty() {
            // Idle medium: nothing can be sensed, and nothing is worth
            // computing (the attempt hooks fetch positions on demand).
            return None;
        }
        let now = core.now();
        let pos = self.tx_pos(sender, now);
        if self.sense_via_grid {
            self.sense_via_buckets(sender, pos, now)
        } else {
            self.sense_sorted(sender, pos, now)
        }
    }

    fn begin_attempt(
        &mut self,
        sender: usize,
        port: usize,
        now: f64,
        attempt: &mut TxAttempt,
    ) -> AttemptInfo<SpatialTx> {
        let n = self.params.n_stations;
        let st = self.station_of_port(port);
        let ap = self.stations[st].ap;
        // Mean SNR, envelope, and oracle all come from the per-event
        // memos; the AP↔station path is reciprocal, so the downlink
        // reuses the uplink's memoized values for the same instant.
        let mut sig_snr_db = self.snr_to_ap(st, ap, now);
        if let Some(fs) = &self.faults {
            // A noise-floor step shaves margin off every link — the
            // oracle's included, since the channel really did get worse.
            sig_snr_db -= fs.noise_delta_db;
        }
        let env_db = self.env_at(st, now);
        let oracle_rate = self.oracle.best_rate(sig_snr_db + env_db);
        if matches!(self.cfg.adapter, AdapterKind::Omniscient) {
            attempt.rate_idx = oracle_rate;
        }
        let start_pos = self.tx_pos(sender, now);
        let mut jammed = false;
        if let Some(j) = self
            .faults
            .as_ref()
            .filter(|f| f.jammer_on)
            .and_then(|f| f.config.jammer)
        {
            // The burst corrupts any reception whose signal-to-jammer
            // ratio at the receiver falls below the capture threshold —
            // the same SIR rule concurrent 802.11 transmitters obey. The
            // verdict is fixed at transmit time (data, not sensing), so
            // it never perturbs the sharded scheduler's frozen senses.
            let rx_pos = if port < n {
                self.params.aps[ap]
            } else {
                self.pos_at(st, now)
            };
            let jam_db = self.params.snr_between(Point { x: j.x, y: j.y }, rx_pos) + j.power_db;
            jammed = jam_db >= 0.0 && sig_snr_db - jam_db < self.params.capture_sir_db;
        }
        let (payload, rx_station) = match self.flows.as_mut() {
            None => (Payload::Segment(0), None),
            Some(fl) => {
                let payload = *fl.queues[port].front().expect("picked link has a frame");
                fl.port_inflight[port] = true;
                fl.sender_port[sender] = port;
                (payload, (port >= n).then_some(st))
            }
        };
        let is_segment = payload.is_segment();
        let payload_bytes = match &self.flows {
            None => self.cfg.payload_bytes,
            Some(fl) => fl.transport.payload_bytes(payload),
        };
        AttemptInfo {
            payload_bytes,
            counts_as_data: is_segment,
            // Audit data frames against the instantaneous analytic oracle.
            audit_best: is_segment.then_some(oracle_rate),
            timeline: false,
            info: SpatialTx {
                ap,
                rx_station,
                sig_snr_db,
                start_pos,
                payload,
                jammed,
            },
        }
    }

    /// Resolve fault-injected losses at the feedback window: a dark AP's
    /// BSS hears nothing (uplink receptions and the AP's own mid-flight
    /// downlink frame alike), and a jammer burst kills receptions whose
    /// SIR it crushed. Runs after [`Medium::fate`] — the channel coin was
    /// already drawn — and consumes no randomness itself, so fault
    /// precedence never shifts the fate stream.
    fn fault_loss(&mut self, tx: &ActiveTx<SpatialTx>) -> Option<FaultLoss> {
        let fs = self.faults.as_ref()?;
        if fs.ap_down[tx.info.ap] {
            return Some(FaultLoss::Outage);
        }
        if tx.info.jammed {
            return Some(FaultLoss::Jamming);
        }
        None
    }

    /// Interference bookkeeping: a concurrent transmission corrupts a
    /// reception only when the interferer's power at that receiver leaves
    /// less than `capture_sir_db` of margin. RTS-protected frames reserved
    /// the medium and neither corrupt nor get corrupted (as in the
    /// single-cell medium).
    ///
    /// Fast path: both corruption directions demand the interferer's mean
    /// SNR at the victim's receiver to clear the 0 dB noise floor, so any
    /// pair separated by more than the interference radius (drift-padded
    /// when the anchor is a transmit-start position) is skipped before the
    /// SNR math — it provably cannot corrupt. The engine pushes `tx` onto
    /// the active set right after this hook, so the grid insert lives
    /// here.
    fn mark_collisions(
        &mut self,
        tx: &mut ActiveTx<SpatialTx>,
        active: &mut [ActiveTx<SpatialTx>],
    ) {
        let entry = TxEntry {
            sender: tx.sender,
            pos: tx.info.start_pos,
            end: tx.end,
        };
        if self.log_muts {
            self.mut_log.push((entry.pos.x, entry.pos.y));
        }
        // Only the plan carrier sense consults is maintained (the choice
        // is fixed at construction).
        if self.sense_via_grid {
            self.grid.insert(entry);
        } else {
            // Keep `by_end` sorted by end descending (ties keep insertion
            // order; the active set is small, so the shift is trivial).
            let at = self
                .by_end
                .iter()
                .position(|e| e.end < entry.end)
                .unwrap_or(self.by_end.len());
            self.by_end.insert(at, entry);
        }
        if tx.use_rts {
            return;
        }
        let now = tx.start;
        let my_pos = tx.info.start_pos;
        // My receiver's position: the BSS AP (uplink) or the destination
        // station right now (downlink).
        let my_rx_pos = match tx.info.rx_station {
            None => self.params.aps[tx.info.ap],
            Some(st) => self.pos_at(st, now),
        };
        let r_int2 = self.interference_radius_m * self.interference_radius_m;
        let r_int_drift = self.interference_radius_m + self.drift_pad_m;
        let r_int_drift2 = r_int_drift * r_int_drift;

        // Which APs can the *new* transmitter possibly interfere at? Its
        // position is exact (no drift pad); one squared distance per AP.
        let mut ap_near = std::mem::take(&mut self.ap_near);
        ap_near.clear();
        ap_near.extend(self.params.aps.iter().map(|&a| dist2(my_pos, a) <= r_int2));

        #[allow(clippy::needless_range_loop)] // `active[i]` is re-borrowed mutably below
        for i in 0..active.len() {
            let o = active[i];
            if o.use_rts {
                continue;
            }
            // Does the new transmission corrupt `o` at `o`'s receiver?
            // Interference buried below the noise floor (mean SNR of the
            // interferer < 0 dB at the receiver) cannot corrupt anything
            // the noise wasn't already corrupting — and beyond the
            // interference radius it provably is buried.
            let int_at_o = match o.info.rx_station {
                None => {
                    ap_near[o.info.ap].then(|| self.snr_sender_to_ap(tx.sender, o.info.ap, now))
                }
                Some(st_r) => {
                    let rxp = self.pos_at(st_r, now);
                    (dist2(my_pos, rxp) <= r_int2).then(|| self.params.snr_between(my_pos, rxp))
                }
            };
            if let Some(int_at_o) = int_at_o {
                if int_at_o >= 0.0 && o.info.sig_snr_db - int_at_o < self.params.capture_sir_db {
                    let om = &mut active[i];
                    om.collided = true;
                    om.first_other_start = om.first_other_start.min(tx.start);
                    om.max_other_end = om.max_other_end.max(tx.end);
                    if o.info.ap != tx.info.ap {
                        self.inter_cell_corruptions += 1;
                        om.corrupt_inter_cell = true;
                    } else {
                        om.corrupt_same_cell = true;
                    }
                }
            }
            // Does `o` corrupt the new transmission at my receiver? `o`
            // may have drifted since its start position was recorded, so
            // the prune radius carries the drift pad.
            if dist2(o.info.start_pos, my_rx_pos) <= r_int_drift2 {
                let int_at_mine = match tx.info.rx_station {
                    None => self.snr_sender_to_ap(o.sender, tx.info.ap, now),
                    Some(_) => {
                        let opos = self.tx_pos(o.sender, now);
                        self.params.snr_between(opos, my_rx_pos)
                    }
                };
                if int_at_mine >= 0.0
                    && tx.info.sig_snr_db - int_at_mine < self.params.capture_sir_db
                {
                    tx.collided = true;
                    tx.first_other_start = tx.first_other_start.min(o.start);
                    tx.max_other_end = tx.max_other_end.max(o.end);
                    if o.info.ap != tx.info.ap {
                        self.inter_cell_corruptions += 1;
                        tx.corrupt_inter_cell = true;
                    } else {
                        tx.corrupt_same_cell = true;
                    }
                }
            }
        }
        self.ap_near = ap_near;
    }

    /// The transmission left the air: drop it from both indices.
    fn on_air_end(&mut self, tx: &ActiveTx<SpatialTx>) {
        if self.log_muts {
            self.mut_log
                .push((tx.info.start_pos.x, tx.info.start_pos.y));
        }
        if self.sense_via_grid {
            self.grid.remove(tx.sender, tx.info.start_pos);
        } else if let Some(i) = self.by_end.iter().position(|e| e.sender == tx.sender) {
            self.by_end.remove(i);
        }
    }

    /// Interference-free fate from the streaming channel — one coin draw
    /// as always, with the envelope shared from the transmit-time memo
    /// (same `t`, same link ⇒ same Jakes evaluation) and the BER/success
    /// pair from the kernel memo.
    fn fate(&mut self, tx: &ActiveTx<SpatialTx>) -> FrameFate {
        let st = self.station_of_port(tx.port);
        let u = self.stations[st].link.draw();
        let env_db = self.env_at(st, tx.start);
        fate_from_draw_memo(
            u,
            tx.info.sig_snr_db + env_db,
            tx.rate_idx,
            tx.payload_bytes * 8,
            &mut self.fs_memo,
        )
    }

    /// Same-tick cohort prewarm: one coherent sweep through the batched
    /// channel kernels so the member dispatches that follow hit warm memo
    /// slots.
    ///
    /// Two passes, both value-transparent (memo writes only — a miss at
    /// dispatch recomputes the identical number, so `--batch off` is
    /// byte-identical by construction):
    ///
    /// 1. **Envelopes.** Every Jakes evaluation the cohort will demand —
    ///    TxStart members sample their station's link at the cohort tick
    ///    (the transmit-time oracle audit), Outcome members at their
    ///    transmit instant (the fate draw shares the transmit-time
    ///    evaluation) — gathered, deduplicated against warm cache slots,
    ///    and swept four lanes at a time through
    ///    [`StreamingLink::envelope_db_x4`].
    /// 2. **Frame-success pairs.** The outcome members' `(SNR, rate,
    ///    bits)` memo keys, swept through
    ///    [`FrameSuccessMemo::eval_many`]'s unrolled miss kernel.
    ///
    /// Best-effort by design: a TxStart that ends up deferring wastes its
    /// envelope warm, an AP sender's port is unknown until `pick_port`
    /// (skipped), and a duplicate station in one cohort keeps only the
    /// last slot — none of which can perturb values.
    fn prepare_cohort(&mut self, core: &Core, t: f64, cohort: &[MacEv<SpatialEv>]) {
        let _ = t;
        let mut env = std::mem::take(&mut self.coh_env);
        env.clear();
        // Only `Outcome` members are worth warming: an outcome always
        // evaluates its fate (envelope at the recorded start instant plus
        // the frame-success key), whereas a same-tick `TxStart` storm is
        // deferral-dominated — most members lose carrier sense and never
        // touch the channel, so batch-evaluating their envelopes would
        // burn the kernel's win on values nobody reads. (Skipping them is
        // sound: the prewarm is best-effort by contract, and a skipped
        // member simply computes its envelope at dispatch as before.)
        for ev in cohort {
            if let MacEv::Outcome { tx } = *ev {
                if let Some(p) = core.pending.iter().find(|p| p.id == tx) {
                    let st = self.station_of_port(p.port);
                    let (e, cached, _) = self.env_cache[st];
                    if e != self.stations[st].epoch || cached != p.start.to_bits() {
                        env.push((st as u32, p.start));
                    }
                }
            }
        }
        for q in env.chunks(4) {
            if let [a, b, c, d] = *q {
                let g = StreamingLink::envelope_db_x4(
                    [
                        &self.stations[a.0 as usize].link,
                        &self.stations[b.0 as usize].link,
                        &self.stations[c.0 as usize].link,
                        &self.stations[d.0 as usize].link,
                    ],
                    [a.1, b.1, c.1, d.1],
                );
                for (l, &(st, at)) in q.iter().enumerate() {
                    let st = st as usize;
                    self.env_cache[st] = (self.stations[st].epoch, at.to_bits(), g[l]);
                }
            } else {
                for &(st, at) in q {
                    self.env_at(st as usize, at);
                }
            }
        }
        env.clear();
        self.coh_env = env;

        let mut snrs = std::mem::take(&mut self.coh_snr);
        let mut rates = std::mem::take(&mut self.coh_rate);
        let mut bits = std::mem::take(&mut self.coh_bits);
        let mut out = std::mem::take(&mut self.coh_out);
        snrs.clear();
        rates.clear();
        bits.clear();
        for ev in cohort {
            if let MacEv::Outcome { tx } = *ev {
                if let Some(p) = core.pending.iter().find(|p| p.id == tx) {
                    let st = self.station_of_port(p.port);
                    let snr = p.info.sig_snr_db + self.env_at(st, p.start);
                    // Below the detection floor the fate never consults
                    // the memo; warming those keys would only pollute it.
                    if snr >= DETECT_SNR_DB {
                        snrs.push(snr);
                        rates.push(p.rate_idx as u32);
                        bits.push((p.payload_bytes * 8) as u64);
                    }
                }
            }
        }
        if snrs.len() >= 2 {
            out.clear();
            out.resize(snrs.len(), (0.0, 0.0));
            self.fs_memo.eval_many(&snrs, &rates, &bits, &mut out);
        }
        self.coh_snr = snrs;
        self.coh_rate = rates;
        self.coh_bits = bits;
        self.coh_out = out;
    }

    fn on_acked(&mut self, core: &mut Core, tx: &ActiveTx<SpatialTx>) {
        let n = self.params.n_stations;
        let flow = station_of_port(n, tx.port);
        let Some(fl) = self.flows.as_mut() else {
            core.stats.frames_delivered += 1;
            self.stations[tx.sender].delivered += 1;
            return;
        };
        core.stats.frames_delivered += u64::from(tx.info.payload.is_segment());
        fl.queues[tx.port].pop_front();
        core.lanes.queue_depth[tx.port] = fl.queues[tx.port].len() as u32;
        if tx.sender >= n {
            let a = tx.sender - n;
            fl.ap_rr[a] = (fl.ap_rr[a] + 1) % fl.ap_members[a].len().max(1);
        }
        let FlowNet {
            transport, queues, ..
        } = fl;
        let mut host = SpatialHost {
            queues: &mut *queues,
            stations: &self.stations,
            core: &mut *core,
            n,
        };
        transport.on_frame_delivered(&mut host, flow, tx.info.payload);
    }

    fn on_dropped(&mut self, core: &mut Core, tx: &ActiveTx<SpatialTx>) {
        let n = self.params.n_stations;
        let flow = station_of_port(n, tx.port);
        let Some(fl) = self.flows.as_mut() else {
            // Saturated source: the frame evaporates, the next materializes.
            return;
        };
        fl.queues[tx.port].pop_front();
        core.lanes.queue_depth[tx.port] = fl.queues[tx.port].len() as u32;
        let FlowNet {
            transport, queues, ..
        } = fl;
        let mut host = SpatialHost {
            queues: &mut *queues,
            stations: &self.stations,
            core: &mut *core,
            n,
        };
        transport.on_frame_dropped(&mut host, flow);
    }

    fn after_outcome(&mut self, core: &mut Core, sender: usize) {
        let n = self.params.n_stations;
        if sender < n {
            self.try_apply_pending_handoff(core, sender);
        }
        match &self.flows {
            None => {
                // Saturated uplink: there is always a next frame.
                if !core.lanes.start_pending[sender] {
                    let cw = core.lanes.cw[sender];
                    core.schedule_tx_start(sender, None, cw);
                }
            }
            Some(_) => {
                // The attempt on `sender_port[sender]` just fully resolved
                // (acked, dropped, or headed for a retry): the port is no
                // longer in flight. A handoff deferred on this very frame
                // can now go; afterwards, if the port's owner changed
                // mid-stream, the new owner — who deliberately was not
                // woken while the frame was in the air — picks up whatever
                // the queue still holds.
                let port = {
                    let fl = self.flows.as_mut().expect("matched Some above");
                    let port = fl.sender_port[sender];
                    fl.port_inflight[port] = false;
                    port
                };
                if port >= n {
                    self.try_apply_pending_handoff(core, port - n);
                }
                let owner = if port < n {
                    port
                } else {
                    n + self.stations[port - n].ap
                };
                let fl = self.flows.as_ref().expect("matched Some above");
                if owner != sender
                    && !fl.queues[port].is_empty()
                    && !core.lanes.busy[owner]
                    && !core.lanes.start_pending[owner]
                {
                    let cw = core.lanes.cw[port];
                    core.schedule_tx_start(owner, None, cw);
                }
                if let Some(port) = self.pick_port(sender) {
                    if !core.lanes.start_pending[sender] {
                        let cw = core.lanes.cw[port];
                        core.schedule_tx_start(sender, None, cw);
                    }
                }
            }
        }
    }

    /// Periodic association re-evaluation, plus transport dispatch.
    fn on_event(&mut self, core: &mut Core, ev: SpatialEv) {
        let st = match ev {
            SpatialEv::Transport(tev) => {
                let n = self.params.n_stations;
                if let Some(fl) = self.flows.as_mut() {
                    let FlowNet {
                        transport, queues, ..
                    } = fl;
                    let mut host = SpatialHost {
                        queues,
                        stations: &self.stations,
                        core,
                        n,
                    };
                    transport.on_event(&mut host, tev);
                }
                return;
            }
            SpatialEv::Fault(fev) => {
                self.on_fault_event(core, fev);
                return;
            }
            SpatialEv::Roam { st } => st,
        };
        let Some((hysteresis, interval, _)) = self.params.roaming else {
            return;
        };
        let now = core.now();
        let cur = self.stations[st].ap;
        // With an AP dark, the candidate set shrinks to the live APs and
        // a station stranded on the dark one re-homes without waiting out
        // the hysteresis (association to a dead AP is worth nothing).
        // The gate requires an *active* outage, so faults-off — and
        // faulted runs outside the outage window — take the original
        // path untouched.
        let (best, best_rssi, bypass_hysteresis) =
            if self.faults.as_ref().is_some_and(|f| f.any_ap_down) {
                let down = self
                    .faults
                    .as_ref()
                    .map(|f| f.ap_down.clone())
                    .expect("checked");
                let mut best = usize::MAX;
                let mut best_rssi = f64::NEG_INFINITY;
                for (a, &is_down) in down.iter().enumerate() {
                    if is_down {
                        continue;
                    }
                    let rssi = self.snr_to_ap(st, a, now);
                    if rssi > best_rssi {
                        best = a;
                        best_rssi = rssi;
                    }
                }
                if best == usize::MAX {
                    // Every AP is dark: nowhere to go; check again later.
                    core.events
                        .schedule(now + interval, MacEv::Medium(SpatialEv::Roam { st }));
                    return;
                }
                (best, best_rssi, down[cur])
            } else {
                let (best, best_rssi) = self.best_ap_at(st, now);
                (best, best_rssi, false)
            };
        let cur_rssi = self.snr_to_ap(st, cur, now);
        if best != cur && (bypass_hysteresis || best_rssi >= cur_rssi + hysteresis) {
            // Defer while either of the station's links has a frame in
            // flight: the pending attempt must resolve against the link
            // state (fading process, epoch, adapter) it was launched on.
            let n = self.params.n_stations;
            let downlink_inflight = self
                .flows
                .as_ref()
                .is_some_and(|fl| fl.port_inflight[n + st]);
            if core.lanes.busy[st] || downlink_inflight {
                self.stations[st].pending_handoff = Some(best);
            } else {
                self.apply_handoff(core, st, best, now);
            }
        }
        core.events
            .schedule(now + interval, MacEv::Medium(SpatialEv::Roam { st }));
    }

    /// Telemetry groups per station: a station's uplink and downlink ports
    /// both report as that station.
    fn telemetry_station(&self, port: usize) -> usize {
        station_of_port(self.params.n_stations, port)
    }

    /// Transport timers and wired deliveries are transport work; `Roam`
    /// events are the medium's own.
    fn event_is_transport(&self, ev: &SpatialEv) -> bool {
        matches!(ev, SpatialEv::Transport(_))
    }
}

/// The station whose link a port serves, given `n` stations (uplink
/// ports are the station id; downlink ports are offset by the station
/// count).
fn station_of_port(n: usize, port: usize) -> usize {
    if port < n {
        port
    } else {
        port - n
    }
}

/// Per-worker carrier-sense scratch for the sharded scheduler: private
/// mobility cursors (one full set per domain — positions are pure in `t`,
/// so private cursors agree bit-for-bit with the medium's) plus a reused
/// candidate buffer mirroring `sense_scratch`.
struct SpatialSenseScratch {
    walkers: Vec<MobilityWalker>,
    cand: Vec<TxEntry>,
}

impl ShardableMedium for SpatialMedium {
    type Scratch = SpatialSenseScratch;

    fn make_scratch(&self) -> SpatialSenseScratch {
        SpatialSenseScratch {
            walkers: self.walkers.clone(),
            cand: Vec::new(),
        }
    }

    /// Domains are vertical strips of the floor; a sender's home strip is
    /// its initial AP's x-coordinate (stations) or its own (AP
    /// transmitters). Load balance only — the merge restores global order,
    /// so stations roaming across strips need no re-mapping.
    fn domain_of(&self, sender: usize, domains: usize) -> usize {
        let n = self.params.n_stations;
        let ap = if sender < n {
            self.initial_assoc[sender]
        } else {
            sender - n
        };
        let b = &self.params.bounds;
        let w = b.max.x - b.min.x;
        if w <= 0.0 {
            return 0;
        }
        let f = (self.params.aps[ap].x - b.min.x) / w;
        ((f * domains as f64) as usize).min(domains - 1)
    }

    /// [`Medium::carrier_sense`] evaluated from worker threads against the
    /// frozen window-start active set: same emptiness fast path (the
    /// sense indices' population equals `core.active`'s), same plan, same
    /// candidate order, same band classification — via private cursors
    /// instead of the `&mut self` memos.
    fn sense_pure(
        &self,
        scratch: &mut SpatialSenseScratch,
        sender: usize,
        t: f64,
    ) -> (Option<f64>, (f64, f64)) {
        let SpatialSenseScratch { walkers, cand } = scratch;
        let pos = self.walker_pos(walkers, sender, t);
        let sensed = if self.sense_via_grid {
            if self.grid.is_empty() {
                None
            } else {
                cand.clear();
                self.grid
                    .for_each_in_disk(pos, self.sense_radius_m + self.drift_pad_m, |e| {
                        if e.sender != sender {
                            cand.push(*e);
                        }
                    });
                let mut sensed_until: Option<f64> = None;
                for e in cand.iter() {
                    if sensed_until.is_some_and(|u| e.end <= u) {
                        continue;
                    }
                    if self.audible_pure(walkers, e, pos, t) {
                        sensed_until = Some(sensed_until.map_or(e.end, |u: f64| u.max(e.end)));
                    }
                }
                sensed_until
            }
        } else {
            let mut sensed = None;
            for e in &self.by_end {
                if e.sender == sender {
                    continue;
                }
                if self.audible_pure(walkers, e, pos, t) {
                    sensed = Some(e.end);
                    break;
                }
            }
            sensed
        };
        (sensed, (pos.x, pos.y))
    }

    /// An active-set mutation beyond the drift-widened certainly-inaudible
    /// radius of the sensing position cannot flip any `audible_at` verdict
    /// (inserted entry: certainly inaudible; removed entry: was certainly
    /// inaudible, so dropping it changes nothing), hence cannot change the
    /// sensed max-end either.
    fn inval_radius2(&self) -> f64 {
        self.sense_hi_ins2
    }

    fn mutations(&self) -> &[(f64, f64)] {
        &self.mut_log
    }

    fn clear_mutations(&mut self) {
        self.mut_log.clear();
    }

    fn set_mutation_logging(&mut self, on: bool) {
        self.log_muts = on;
    }

    /// ~11 slots of backoff: comfortably beyond DIFS + the mean draw, so
    /// most channel-access events land beyond the window and batch into
    /// the parallel drains, while the window stays short enough that the
    /// frozen active set rarely mutates under a precomputed sense.
    fn lookahead(&self) -> f64 {
        1e-4
    }

    fn pool_workers(&self) -> Option<usize> {
        self.cfg.shard_workers
    }
}

/// The multi-cell simulator: a [`MacEngine`] configured with a
/// [`SpatialMedium`].
pub struct SpatialSim {
    engine: MacEngine<SpatialMedium>,
}

impl SpatialSim {
    /// Builds the deployment: lays out the grid, spawns stations, and
    /// associates each with its strongest AP.
    pub fn new(mut cfg: SpatialConfig) -> Result<Self, crate::spatial::SpatialError> {
        if let SpatialTraffic::Flows(tc) = &cfg.traffic {
            // Flow traffic sizes data frames from the transport's MSS.
            cfg.payload_bytes = tc.tcp.mss + IP_TCP_HEADER;
        }
        let params = cfg.spatial.resolve()?;
        if let Some(fc) = &cfg.faults {
            if let Some(o) = &fc.ap_outage {
                if o.ap >= params.aps.len() {
                    return Err(SpatialError(format!(
                        "faults.ap_outage.ap = {} out of range ({} APs)",
                        o.ap,
                        params.aps.len()
                    )));
                }
            }
            if let Some(ch) = &fc.churn {
                if ch.join_count > params.n_stations || ch.leave_count > params.n_stations {
                    return Err(SpatialError(format!(
                        "faults.churn join/leave counts ({}/{}) exceed n_stations = {}",
                        ch.join_count, ch.leave_count, params.n_stations
                    )));
                }
                if matches!(cfg.traffic, SpatialTraffic::Flows(_)) {
                    return Err(SpatialError(
                        "faults.churn requires the saturated-uplink workload \
                         (flow-mode joins would need per-flow transport setup)"
                            .into(),
                    ));
                }
            }
        }
        let walkers = (0..params.n_stations)
            .map(|s| MobilityWalker::new(params.station_seed(cfg.seed, s)))
            .collect();
        let mac_params = MacParams {
            postambles: cfg.adapter.postambles(),
            detect_prob: cfg.adapter.detect_prob(),
            backoff_seed: cfg.mac_seed ^ 0x4E45_5453_5041,
            collision_seed: cfg.mac_seed,
        };
        let n = params.n_stations;
        let n_aps = params.aps.len();
        // Conservative pruning radii: exact inversions of the path-loss
        // model for the sensing threshold and the 0 dB interference
        // floor, plus the worst-case drift of a transmitter while its
        // frame is on the air (slowest-rate airtime + RTS/CTS, at the
        // mobility model's speed).
        let (sense_lo, sense_radius_m) = params.range_band(params.sense_snr_db);
        // A negative `lo` means "no distance certainly passes"; keep the
        // squared form negative so `d² <= lo²` stays unsatisfiable.
        let sense_lo2 = if sense_lo < 0.0 {
            -1.0
        } else {
            sense_lo * sense_lo
        };
        let sense_hi2 = sense_radius_m * sense_radius_m;
        let interference_radius_m = params.range_for_threshold(0.0);
        let area = params.bounds.width() * params.bounds.height();
        let max_airtime: f64 = softrate_phy::rates::PAPER_RATES
            .iter()
            .map(|&r| data_airtime(r, cfg.payload_bytes, cfg.adapter.postambles()))
            .fold(0.0, f64::max)
            + rts_cts_overhead();
        let drift_pad_m = params.mobility.speed_mps() * max_airtime * (1.0 + 1e-9) + 1e-9;
        let grid = ActiveGrid::new(params.bounds, sense_radius_m + drift_pad_m);
        let sense_lo_ins = sense_lo - drift_pad_m;
        let sense_lo_ins2 = if sense_lo_ins < 0.0 {
            -1.0
        } else {
            sense_lo_ins * sense_lo_ins
        };
        let sense_hi_ins = sense_radius_m + drift_pad_m;
        // Bucket walks pay off when the sensing disk covers a small
        // fraction of the floor; on dense floors the end-sorted scan's
        // first-hit exit wins. Either plan classifies identically.
        let sense_via_grid = std::f64::consts::PI * sense_hi_ins * sense_hi_ins * 4.0 < area;
        // An all-`None` `[faults]` table lowers to no state at all, so an
        // empty table is provably identical to no table (pinned by test).
        let faults = cfg.faults.filter(|f| !f.is_noop()).map(|f| {
            let mut dormant = vec![false; n];
            if let Some(ch) = f.churn {
                for d in dormant.iter_mut().skip(n.saturating_sub(ch.join_count)) {
                    *d = true;
                }
            }
            FaultState {
                config: f,
                ap_down: vec![false; n_aps],
                ap_down_since: vec![0.0; n_aps],
                any_ap_down: false,
                dormant,
                left: vec![false; n],
                noise_delta_db: 0.0,
                jammer_on: false,
                seed: mix_seed(cfg.mac_seed, 0x4641_554C), // "FAUL"
            }
        });
        let mut medium = SpatialMedium {
            stations: Vec::with_capacity(n),
            walkers,
            flows: None,
            grid,
            sense_radius_m,
            sense_lo2,
            sense_hi2,
            sense_lo_ins2,
            sense_hi_ins2: sense_hi_ins * sense_hi_ins,
            sense_via_grid,
            by_end: Vec::new(),
            interference_radius_m,
            drift_pad_m,
            pos_cache: vec![(NO_TIME, Point { x: 0.0, y: 0.0 }); n],
            snr_ap_cache: vec![(NO_TIME, 0, 0.0); n],
            env_cache: vec![(0, NO_TIME, 0.0); n],
            fs_memo: FrameSuccessMemo::new(),
            coh_env: Vec::new(),
            coh_snr: Vec::new(),
            coh_rate: Vec::new(),
            coh_bits: Vec::new(),
            coh_out: Vec::new(),
            oracle: OracleBands::new(cfg.frame_bits()),
            sense_scratch: Vec::new(),
            mut_log: Vec::new(),
            log_muts: false,
            ap_near: Vec::with_capacity(n_aps),
            faults,
            inter_cell_corruptions: 0,
            handoffs: 0,
            initial_assoc: Vec::with_capacity(n),
            handoff_log: Vec::new(),
            params,
            cfg,
        };
        let mut ports = Vec::with_capacity(n);
        for s in 0..n {
            let pos = medium.params.station_pos(medium.cfg.seed, s, 0.0);
            let (ap, _) = medium.params.best_ap(pos);
            medium.initial_assoc.push(ap);
            let link = medium.make_link(s, ap, 0);
            ports.push(Port::new(medium.make_adapter(s)));
            medium.stations.push(Station {
                ap,
                epoch: 0,
                link,
                pending_handoff: None,
                delivered: 0,
            });
        }
        let mut n_senders = n;
        if let SpatialTraffic::Flows(tc) = &medium.cfg.traffic {
            // Downlink ports (one per station) and AP transmitters.
            for s in 0..n {
                ports.push(Port::new(medium.make_downlink_adapter(s)));
            }
            n_senders = n + n_aps;
            let mut ap_members = vec![Vec::new(); n_aps];
            for (s, &a) in medium.initial_assoc.iter().enumerate() {
                ap_members[a].push(s);
            }
            let upload = tc.upload;
            let flow_links = (0..n).map(|s| if upload { (s, n + s) } else { (n + s, s) });
            medium.flows = Some(FlowNet {
                transport: TransportLayer::new(*tc, flow_links),
                queues: (0..2 * n).map(|_| VecDeque::new()).collect(),
                ap_members,
                ap_rr: vec![0; n_aps],
                port_inflight: vec![false; 2 * n],
                sender_port: vec![0; n + n_aps],
            });
        }
        let mut engine = MacEngine::new(n_senders, ports, mac_params, medium);
        engine.core.batch = engine.medium.cfg.batch;
        if let Some(tcfg) = engine.medium.cfg.telemetry.clone() {
            engine.core.recorder = Some(Box::new(softrate_telemetry::Recorder::new(
                tcfg, n, n_senders,
            )));
        }
        // SoftPHY hint corruption lives in the engine core (it degrades
        // what the adapter sees at the feedback window, after telemetry
        // observed the truth), keyed by the MAC seed like the rest of
        // the MAC-layer randomness.
        if let Some(h) = engine.medium.cfg.faults.and_then(|f| f.hint) {
            if h.drop_prob > 0.0 || h.quantize_db > 0.0 {
                let seed = mix_seed(engine.medium.cfg.mac_seed, 0x4849_4E54);
                engine.core.faults = Some(FaultDriver::new(h, seed));
            }
        }
        Ok(SpatialSim { engine })
    }

    /// Runs to `cfg.duration` and reports. `cfg.shards > 1` runs the
    /// conservative sharded scheduler; results are byte-identical either
    /// way (the shard-invariance suite pins it).
    pub fn run(mut self) -> RunReport {
        let duration = self.engine.medium.cfg.duration;
        let shards = self.engine.medium.cfg.shards;
        if shards > 1 {
            self.engine.run_sharded(duration, shards);
        } else {
            self.engine.run(duration);
        }
        self.report()
    }

    /// [`SpatialSim::run`] with per-phase wall-time accounting (identical
    /// results; see [`MacEngine::run_profiled`]).
    pub fn run_profiled(mut self) -> (RunReport, PhaseProfile) {
        let duration = self.engine.medium.cfg.duration;
        let shards = self.engine.medium.cfg.shards;
        let profile = if shards > 1 {
            self.engine.run_profiled_sharded(duration, shards)
        } else {
            self.engine.run_profiled(duration)
        };
        (self.report(), profile)
    }

    fn report(mut self) -> RunReport {
        let duration = self.engine.medium.cfg.duration;
        let telemetry = self
            .engine
            .core
            .recorder
            .take()
            .map(|rec| rec.finish(duration));
        let m = self.engine.medium;
        let stats = self.engine.core.stats;
        let per_station: Vec<f64> = match &m.flows {
            None => {
                let useful_bits = (m.cfg.payload_bytes - IP_TCP_HEADER) as f64 * 8.0;
                m.stations
                    .iter()
                    .map(|s| s.delivered as f64 * useful_bits / duration)
                    .collect()
            }
            Some(fl) => (0..m.stations.len())
                .map(|s| fl.transport.flow_goodput_bps(s, duration))
                .collect(),
        };
        RunReport {
            adapter_name: m.cfg.adapter.name().to_string(),
            aggregate_goodput_bps: per_station.iter().sum(),
            per_flow_goodput_bps: per_station,
            audit: stats.audit,
            frames_sent: stats.frames_sent,
            frames_delivered: stats.frames_delivered,
            collisions: stats.collisions,
            silent_losses: stats.silent_losses,
            rate_timeline: Vec::new(),
            inter_cell_corruptions: m.inter_cell_corruptions,
            handoffs: m.handoffs,
            initial_assoc: m.initial_assoc,
            handoff_log: m.handoff_log,
            events_processed: stats.events_processed,
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::MobilitySpec;
    use crate::spatial::RoamingSpec;
    use softrate_sim::config::TrafficKind;

    fn small_spec(cols: usize, spacing: f64, n_stations: usize) -> SpatialSpec {
        SpatialSpec {
            ap_cols: cols,
            ap_rows: 1,
            ap_spacing_m: spacing,
            n_stations,
            snr_ref_db: None,
            path_loss_exp: None,
            sense_snr_db: None,
            capture_sir_db: None,
            doppler_hz: None,
            mobility: MobilitySpec::Static,
            roaming: None,
        }
    }

    fn run(cfg: SpatialConfig) -> RunReport {
        SpatialSim::new(cfg).expect("valid spec").run()
    }

    /// A flow-mode transport config mirroring the Figure 12 defaults with
    /// an enterprise-grade wired backhaul (the wired segment must not be
    /// the bottleneck of a whole floor).
    fn flows(traffic: TrafficKind, upload: bool) -> SpatialTraffic {
        SpatialTraffic::Flows(TransportConfig::enterprise(traffic, upload, 0x5A7A))
    }

    #[test]
    fn single_cell_moves_data() {
        let mut cfg = SpatialConfig::new(AdapterKind::Fixed(2), small_spec(1, 20.0, 3));
        cfg.duration = 2.0;
        let r = run(cfg);
        assert!(r.frames_sent > 100, "sent {}", r.frames_sent);
        assert!(
            r.aggregate_goodput_bps > 1e6,
            "goodput {}",
            r.aggregate_goodput_bps
        );
        assert_eq!(r.handoffs, 0);
        assert_eq!(r.initial_assoc, vec![0, 0, 0]);
    }

    #[test]
    fn far_cells_are_independent_collision_domains() {
        // Two cells 300 m apart: any cross-cell transmitter is >= 150 m
        // from the foreign AP, which at the default path loss puts its
        // interference below the noise floor — the domains cannot mix,
        // while stations near their own AP still deliver.
        let mut cfg = SpatialConfig::new(AdapterKind::Fixed(0), small_spec(2, 300.0, 24));
        cfg.duration = 1.5;
        let r = run(cfg);
        assert_eq!(r.inter_cell_corruptions, 0, "distant cells must not mix");
        // Both cells got stations (uniform spawn over a 2-cell strip) and
        // data moved.
        let aps: std::collections::HashSet<usize> = r.initial_assoc.iter().copied().collect();
        assert_eq!(aps.len(), 2, "spawn should cover both cells");
        assert!(r.frames_delivered > 0);
    }

    #[test]
    fn overlapping_cells_interfere() {
        // APs 12 m apart: heavy overlap. Sensing threshold raised so
        // cross-cell transmitters are *not* deferred to, forcing actual
        // concurrent transmissions.
        let mut spec = small_spec(3, 12.0, 12);
        spec.sense_snr_db = Some(100.0); // nobody ever defers
        let mut cfg = SpatialConfig::new(AdapterKind::Fixed(2), spec);
        cfg.duration = 1.0;
        let r = run(cfg);
        assert!(r.collisions > 0, "overlap with no sensing must collide");
        assert!(r.inter_cell_corruptions > 0);
    }

    #[test]
    fn report_is_deterministic() {
        let mk = || {
            let mut spec = small_spec(2, 25.0, 10);
            spec.mobility = MobilitySpec::RandomWaypoint {
                speed_mps: 1.5,
                pause_s: 1.0,
            };
            spec.roaming = Some(RoamingSpec {
                hysteresis_db: 2.0,
                check_interval_s: None,
                handoff: HandoffPolicy::Preserve,
            });
            let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
            cfg.duration = 2.0;
            cfg
        };
        let a = run(mk());
        let b = run(mk());
        assert_eq!(a.aggregate_goodput_bps, b.aggregate_goodput_bps);
        assert_eq!(a.frames_sent, b.frames_sent);
        assert_eq!(a.handoffs, b.handoffs);
        assert_eq!(a.handoff_log, b.handoff_log);
    }

    /// The conservative sharded scheduler must reproduce the sequential
    /// engine bit for bit — every counter, every goodput, every handoff,
    /// and the event count — for any shard count, on both the saturated
    /// fast path and flow traffic, with mobility and roaming in play.
    #[test]
    fn sharded_runs_reproduce_sequential_exactly() {
        let mk = |shards: usize, traffic: Option<SpatialTraffic>| {
            let mut spec = small_spec(3, 25.0, 18);
            spec.mobility = MobilitySpec::RandomWaypoint {
                speed_mps: 3.0,
                pause_s: 0.5,
            };
            spec.roaming = Some(RoamingSpec {
                hysteresis_db: 1.0,
                check_interval_s: Some(0.2),
                handoff: HandoffPolicy::Preserve,
            });
            let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
            cfg.duration = 2.0;
            cfg.shards = shards;
            if let Some(t) = traffic {
                cfg.traffic = t;
            }
            cfg
        };
        for traffic in [None, Some(flows(TrafficKind::Tcp, false))] {
            let base = run(mk(1, traffic.clone()));
            assert!(base.frames_sent > 0);
            for shards in [2usize, 4] {
                let r = run(mk(shards, traffic.clone()));
                assert_eq!(r.events_processed, base.events_processed, "shards={shards}");
                assert_eq!(r.frames_sent, base.frames_sent, "shards={shards}");
                assert_eq!(r.frames_delivered, base.frames_delivered, "shards={shards}");
                assert_eq!(r.collisions, base.collisions, "shards={shards}");
                assert_eq!(r.silent_losses, base.silent_losses, "shards={shards}");
                assert_eq!(
                    r.per_flow_goodput_bps, base.per_flow_goodput_bps,
                    "shards={shards}"
                );
                assert_eq!(r.handoff_log, base.handoff_log, "shards={shards}");
                assert_eq!(
                    r.inter_cell_corruptions, base.inter_cell_corruptions,
                    "shards={shards}"
                );
                assert_eq!(r.audit.accurate, base.audit.accurate, "shards={shards}");
                assert_eq!(r.audit.overselect, base.audit.overselect, "shards={shards}");
                assert_eq!(
                    r.audit.underselect, base.audit.underselect,
                    "shards={shards}"
                );
            }
        }
    }

    #[test]
    fn roaming_walk_hands_off_and_stays_singly_associated() {
        let mut spec = small_spec(3, 24.0, 6);
        spec.mobility = MobilitySpec::RandomWaypoint {
            speed_mps: 12.0, // brisk, to force several cell crossings
            pause_s: 0.0,
        };
        spec.roaming = Some(RoamingSpec {
            hysteresis_db: 1.0,
            check_interval_s: Some(0.1),
            handoff: HandoffPolicy::Preserve,
        });
        let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
        cfg.duration = 6.0;
        let r = run(cfg);
        assert!(r.handoffs > 0, "fast walkers across 3 cells must roam");
        // Invariant: the handoff log forms a consistent chain per station
        // (every `from` equals the previous association), which is exactly
        // the statement that a station is associated to one AP at a time.
        let mut assoc = r.initial_assoc.clone();
        for h in &r.handoff_log {
            assert_eq!(assoc[h.station], h.from, "log out of order");
            assert_ne!(h.from, h.to);
            assert!(h.to < 3);
            assoc[h.station] = h.to;
        }
        assert_eq!(r.handoffs as usize, r.handoff_log.len());
    }

    #[test]
    fn reset_and_preserve_policies_both_run_and_differ() {
        // Cells large enough that SNR swings decades between center and
        // edge: adapter state carried across a handoff is then *wrong*
        // state, and the two policies must measurably diverge.
        let mk = |policy| {
            let mut spec = small_spec(3, 70.0, 6);
            spec.mobility = MobilitySpec::RandomWaypoint {
                speed_mps: 12.0,
                pause_s: 0.0,
            };
            spec.roaming = Some(RoamingSpec {
                hysteresis_db: 1.0,
                check_interval_s: Some(0.1),
                handoff: policy,
            });
            let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
            cfg.duration = 6.0;
            cfg
        };
        let preserve = run(mk(HandoffPolicy::Preserve));
        let reset = run(mk(HandoffPolicy::Reset));
        assert!(preserve.handoffs > 0 && reset.handoffs > 0);
        assert_ne!(
            (preserve.frames_sent, preserve.frames_delivered),
            (reset.frames_sent, reset.frames_delivered),
            "handoff policy must alter rate-adaptation behaviour"
        );
    }

    #[test]
    fn omniscient_tracks_the_oracle_exactly() {
        let mut cfg = SpatialConfig::new(AdapterKind::Omniscient, small_spec(2, 30.0, 4));
        cfg.duration = 1.0;
        let r = run(cfg);
        let (over, acc, under) = r.audit.fractions();
        assert_eq!(over, 0.0);
        assert_eq!(under, 0.0);
        assert_eq!(acc, 1.0);
        assert!(r.frames_delivered > 0);
    }

    #[test]
    fn softrate_adapts_across_the_cell() {
        // Over a cell whose SNR spans many rates, SoftRate must clearly
        // beat the most robust fixed rate and stay within reach of the
        // omniscient oracle.
        let mk = |adapter| {
            let mut cfg = SpatialConfig::new(adapter, small_spec(2, 60.0, 6));
            cfg.duration = 3.0;
            cfg
        };
        let sr = run(mk(AdapterKind::SoftRate));
        let slow = run(mk(AdapterKind::Fixed(0)));
        let omni = run(mk(AdapterKind::Omniscient));
        assert!(
            sr.aggregate_goodput_bps > 1.5 * slow.aggregate_goodput_bps,
            "SoftRate {} vs Fixed-0 {}",
            sr.aggregate_goodput_bps,
            slow.aggregate_goodput_bps
        );
        assert!(
            sr.aggregate_goodput_bps > 0.5 * omni.aggregate_goodput_bps,
            "SoftRate {} vs Omniscient {}",
            sr.aggregate_goodput_bps,
            omni.aggregate_goodput_bps
        );
    }

    /// The fast path's two carrier-sense plans (grid buckets vs the
    /// end-sorted scan) must be indistinguishable in every output — they
    /// visit different candidate supersets but apply the identical
    /// classification. Forcing each plan over the same deployment pins
    /// that, complementing the byte-identical goldens (which pin the fast
    /// path against the pre-optimization engine).
    #[test]
    fn grid_and_sorted_sense_plans_are_result_identical() {
        let mk = || {
            let mut spec = small_spec(3, 40.0, 24);
            spec.mobility = MobilitySpec::RandomWaypoint {
                speed_mps: 3.0,
                pause_s: 0.5,
            };
            spec.sense_snr_db = Some(20.0); // short sensing range: both plans plausible
            spec.roaming = Some(RoamingSpec {
                hysteresis_db: 2.0,
                check_interval_s: None,
                handoff: HandoffPolicy::Preserve,
            });
            let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
            cfg.duration = 3.0;
            cfg
        };
        let forced = |via_grid: bool| {
            let mut sim = SpatialSim::new(mk()).expect("valid spec");
            sim.engine.medium.sense_via_grid = via_grid;
            sim.run()
        };
        let g = forced(true);
        let s = forced(false);
        assert_eq!(g.aggregate_goodput_bps, s.aggregate_goodput_bps);
        assert_eq!(g.per_flow_goodput_bps, s.per_flow_goodput_bps);
        assert_eq!(g.frames_sent, s.frames_sent);
        assert_eq!(g.frames_delivered, s.frames_delivered);
        assert_eq!(g.collisions, s.collisions);
        assert_eq!(g.silent_losses, s.silent_losses);
        assert_eq!(g.inter_cell_corruptions, s.inter_cell_corruptions);
        assert_eq!(g.handoff_log, s.handoff_log);
        assert_eq!(g.events_processed, s.events_processed);
    }

    #[test]
    fn hundred_stations_three_aps_runs_fast_and_streams() {
        // The acceptance-scale shape: >= 100 stations, >= 3 APs, no trace
        // materialization (structurally impossible here: SpatialSim never
        // touches LinkTrace).
        let mut spec = small_spec(3, 30.0, 120);
        spec.mobility = MobilitySpec::RandomWaypoint {
            speed_mps: 1.5,
            pause_s: 2.0,
        };
        spec.roaming = Some(RoamingSpec {
            hysteresis_db: 3.0,
            check_interval_s: None,
            handoff: HandoffPolicy::Preserve,
        });
        let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
        cfg.duration = 1.0;
        let r = run(cfg);
        assert_eq!(r.per_flow_goodput_bps.len(), 120);
        assert!(r.frames_sent > 500, "sent {}", r.frames_sent);
        assert!(r.events_processed > 1000);
    }

    // ---- Flow-mode (pluggable transport) tests ---------------------------

    #[test]
    fn spatial_tcp_upload_moves_data() {
        let mut cfg = SpatialConfig::new(AdapterKind::Fixed(2), small_spec(1, 20.0, 3));
        cfg.traffic = flows(TrafficKind::Tcp, true);
        cfg.duration = 3.0;
        let r = run(cfg);
        assert!(
            r.aggregate_goodput_bps > 1e6,
            "spatial TCP upload goodput {}",
            r.aggregate_goodput_bps
        );
        // Every station's flow makes progress.
        for (s, g) in r.per_flow_goodput_bps.iter().enumerate() {
            assert!(*g > 1e5, "station {s} starved: {g}");
        }
    }

    #[test]
    fn spatial_tcp_download_moves_data() {
        let mut cfg = SpatialConfig::new(AdapterKind::Fixed(2), small_spec(1, 20.0, 3));
        cfg.traffic = flows(TrafficKind::Tcp, false);
        cfg.duration = 3.0;
        let r = run(cfg);
        assert!(
            r.aggregate_goodput_bps > 1e6,
            "spatial TCP download goodput {}",
            r.aggregate_goodput_bps
        );
        for (s, g) in r.per_flow_goodput_bps.iter().enumerate() {
            assert!(*g > 1e5, "station {s} starved: {g}");
        }
    }

    #[test]
    fn spatial_tcp_is_deterministic() {
        let mk = || {
            let mut spec = small_spec(2, 30.0, 8);
            spec.mobility = MobilitySpec::RandomWaypoint {
                speed_mps: 1.5,
                pause_s: 1.0,
            };
            spec.roaming = Some(RoamingSpec {
                hysteresis_db: 2.0,
                check_interval_s: None,
                handoff: HandoffPolicy::Preserve,
            });
            let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
            cfg.traffic = flows(TrafficKind::Tcp, true);
            cfg.duration = 2.0;
            cfg
        };
        let a = run(mk());
        let b = run(mk());
        assert_eq!(a.aggregate_goodput_bps, b.aggregate_goodput_bps);
        assert_eq!(a.frames_sent, b.frames_sent);
        assert_eq!(a.per_flow_goodput_bps, b.per_flow_goodput_bps);
        assert_eq!(a.handoff_log, b.handoff_log);
        assert_eq!(a.events_processed, b.events_processed);
    }

    /// TCP flows must survive roaming: segments keep flowing across >= 1
    /// handoff under *both* handoff policies (the TCP endpoints belong to
    /// the station, not the AP).
    #[test]
    fn spatial_tcp_survives_handoffs_under_both_policies() {
        for (policy, upload) in [
            (HandoffPolicy::Preserve, true),
            (HandoffPolicy::Reset, false),
        ] {
            let mut spec = small_spec(3, 24.0, 4);
            spec.mobility = MobilitySpec::RandomWaypoint {
                speed_mps: 12.0,
                pause_s: 0.0,
            };
            spec.roaming = Some(RoamingSpec {
                hysteresis_db: 1.0,
                check_interval_s: Some(0.1),
                handoff: policy,
            });
            let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
            cfg.traffic = flows(TrafficKind::Tcp, upload);
            cfg.duration = 6.0;
            let r = run(cfg);
            assert!(r.handoffs > 0, "{policy:?}: fast walkers must roam");
            // Goodput integrated over the run includes post-handoff
            // delivery: every flow stays alive.
            for (s, g) in r.per_flow_goodput_bps.iter().enumerate() {
                assert!(
                    *g > 1e5,
                    "{policy:?} upload={upload}: station {s} stalled after handoff: {g}"
                );
            }
            // The single-association invariant holds in flow mode too.
            let mut assoc = r.initial_assoc.clone();
            for h in &r.handoff_log {
                assert_eq!(assoc[h.station], h.from, "chain broken");
                assoc[h.station] = h.to;
            }
        }
    }

    #[test]
    fn spatial_onoff_is_source_limited() {
        let onoff = TrafficKind::OnOff {
            rate_pps: 100.0,
            on_s: 0.25,
            off_s: 0.25,
        };
        let mut cfg = SpatialConfig::new(AdapterKind::Fixed(2), small_spec(1, 20.0, 4));
        cfg.traffic = flows(onoff, true);
        cfg.duration = 4.0;
        let r = run(cfg);
        // 4 stations x 100 pkt/s x 50% duty ≈ 200 pkt/s x 11200 bits.
        let offered = 200.0 * 1400.0 * 8.0;
        assert!(
            r.aggregate_goodput_bps > 0.4 * offered,
            "on-off goodput {} must approach offered {offered}",
            r.aggregate_goodput_bps
        );
        assert!(
            r.aggregate_goodput_bps < 1.5 * offered,
            "on-off goodput {} must not saturate past the source",
            r.aggregate_goodput_bps
        );
    }

    /// The saturated fast path must out-deliver a TCP workload on the same
    /// floor (window/ACK clocking costs throughput), and both must move
    /// real data — a cheap cross-check that the two traffic paths share
    /// the same wireless world.
    #[test]
    fn saturated_udp_outruns_tcp_on_the_same_floor() {
        let mk = |traffic| {
            let mut cfg = SpatialConfig::new(AdapterKind::Fixed(2), small_spec(1, 20.0, 4));
            cfg.traffic = traffic;
            cfg.duration = 2.0;
            cfg
        };
        let udp = run(mk(SpatialTraffic::SaturatedUplinkUdp));
        let tcp = run(mk(flows(TrafficKind::Tcp, true)));
        assert!(udp.aggregate_goodput_bps > 1e6 && tcp.aggregate_goodput_bps > 1e6);
        assert!(
            udp.aggregate_goodput_bps >= 0.95 * tcp.aggregate_goodput_bps,
            "saturated UDP {} must not trail TCP {}",
            udp.aggregate_goodput_bps,
            tcp.aggregate_goodput_bps
        );
    }
}
