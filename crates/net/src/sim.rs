//! The multi-cell spatial network simulator.
//!
//! N stations spread over a grid of APs, each saturated with uplink UDP
//! traffic toward its associated AP. Every BSS runs the same 802.11-like
//! DCF as the single-cell simulator (`softrate_sim::netsim`): DIFS plus
//! binary-exponential backoff, a base-rate feedback window after SIFS, and
//! a retry limit. What is new here:
//!
//! * **Geometry decides everything.** Carrier sense is physical (a station
//!   defers when another transmitter is audible above a mean-SNR
//!   threshold), so hidden terminals and spatial reuse both *emerge* from
//!   positions rather than from a configured probability. A concurrent
//!   transmission corrupts a reception only when the
//!   signal-to-interference ratio at that receiver falls below the capture
//!   threshold — co-channel interference between overlapping cells, and
//!   clean parallel operation between distant ones.
//! * **Streaming channels.** Frame fates are drawn at transmit time from
//!   per-link [`StreamingLink`]s (Jakes fading + the calibrated analytic
//!   SNR→BER map + a per-link SplitMix64 coin stream). No `LinkTrace` is
//!   ever materialized, so memory stays O(stations) regardless of
//!   duration.
//! * **Roaming.** Stations periodically re-evaluate mean RSSI and hand off
//!   to a stronger AP past a hysteresis, with the rate adapter's learned
//!   state either preserved or reset across the handoff (both policies are
//!   first-class, so their cost can be measured).
//!
//! The collision *feedback* semantics reproduce §6.4 exactly as the
//! single-cell simulator does: a flagged collision feeds back the
//! interference-free BER, an unflagged one a catastrophic BER, a destroyed
//! header nothing at all (except a postamble-only ACK in ideal mode).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use softrate_channel::analytic::best_rate_for_snr;
use softrate_core::adapter::{RateAdapter, TxOutcome};
use softrate_sim::config::AdapterKind;
use softrate_sim::event::EventQueue;
use softrate_sim::feedback::{apply_collision_feedback, CollisionTiming, HEADER_AIRTIME_FRAC};
use softrate_sim::netsim::RateAudit;
use softrate_sim::timing::{
    attempt_airtime, data_airtime, feedback_airtime, rts_cts_overhead, CW_MAX, CW_MIN, DIFS,
    IP_TCP_HEADER, MAX_RETRIES, SIFS, SLOT,
};
use softrate_trace::schema::hash_uniform;

use crate::channel::StreamingLink;
use crate::geometry::Point;
use crate::mobility::MobilityWalker;
use crate::spatial::{HandoffPolicy, SpatialParams, SpatialSpec};
use crate::stream::mix_seed;

/// Configuration of one spatial simulation run.
#[derive(Debug, Clone)]
pub struct SpatialConfig {
    /// Simulated seconds.
    pub duration: f64,
    /// Rate-adaptation algorithm every station runs on its uplink.
    pub adapter: AdapterKind,
    /// On-air bytes per data frame (payload + IP/TCP-sized headers).
    pub payload_bytes: usize,
    /// Deployment seed: station spawns, trajectories, fading, and fate
    /// streams all derive from it.
    pub seed: u64,
    /// Seed for MAC-layer randomness (backoff draws, collision-detector
    /// verdicts, adapter tie-breaks). Defaults to `seed`; the scenario
    /// engine sets it to the per-run seed while `seed` stays per-spec, so
    /// every adapter in a matrix is compared over identical channel
    /// realizations (§6.1) with independent MAC randomness per run.
    pub mac_seed: u64,
    /// The deployment.
    pub spatial: SpatialSpec,
}

impl SpatialConfig {
    /// A default-duration run of `spatial` under `adapter`.
    pub fn new(adapter: AdapterKind, spatial: SpatialSpec) -> Self {
        SpatialConfig {
            duration: 10.0,
            adapter,
            payload_bytes: 1440,
            seed: 0x5A7A,
            mac_seed: 0x5A7A,
            spatial,
        }
    }

    /// Data-frame size on the air, bits.
    pub fn frame_bits(&self) -> usize {
        self.payload_bytes * 8
    }
}

/// One recorded handoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HandoffRecord {
    /// When, seconds.
    pub t: f64,
    /// Which station.
    pub station: usize,
    /// AP roamed away from.
    pub from: usize,
    /// AP roamed to.
    pub to: usize,
}

/// Results of one spatial run.
#[derive(Debug, Clone)]
pub struct SpatialReport {
    /// Algorithm under test.
    pub adapter_name: String,
    /// Sum of per-station goodputs, bit/s.
    pub aggregate_goodput_bps: f64,
    /// Per-station goodput, bit/s (useful payload, headers excluded).
    pub per_station_goodput_bps: Vec<f64>,
    /// Data frames transmitted on the air.
    pub frames_sent: u64,
    /// Data frames delivered intact.
    pub frames_delivered: u64,
    /// Frames corrupted by concurrent transmissions.
    pub collisions: u64,
    /// Attempts that produced no feedback at all.
    pub silent_losses: u64,
    /// Corruption events whose interferer belonged to a different BSS than
    /// the victim receiver (co-channel inter-cell interference).
    pub inter_cell_corruptions: u64,
    /// Completed handoffs.
    pub handoffs: u64,
    /// Rate-selection accuracy vs the instantaneous analytic oracle.
    pub audit: RateAudit,
    /// Initial association (station -> AP) chosen by strongest RSSI.
    pub initial_assoc: Vec<usize>,
    /// Every handoff, in order.
    pub handoff_log: Vec<HandoffRecord>,
    /// Events processed by the discrete-event loop.
    pub events_processed: u64,
}

/// Simulator events.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A station's backoff expired: try to transmit.
    TxStart { st: usize },
    /// A transmission's air time ended.
    TxEnd { tx: u64 },
    /// Feedback window closed: resolve the attempt at the sender.
    Outcome { tx: u64 },
    /// Periodic association re-evaluation.
    Roam { st: usize },
}

/// One station and its current uplink.
struct Station {
    /// Associated AP.
    ap: usize,
    /// Association epoch (increments on every handoff; keys fate streams).
    epoch: u64,
    /// Streaming channel to the current AP.
    link: StreamingLink,
    /// Rate adapter for the uplink.
    adapter: Box<dyn RateAdapter>,
    retries: u32,
    cw: u32,
    attempts: u64,
    /// A transmission is on the air or awaiting its outcome.
    in_flight: bool,
    /// A TxStart event is already scheduled.
    start_pending: bool,
    /// Handoff decided while a frame was in flight; applied at outcome.
    pending_handoff: Option<usize>,
    delivered: u64,
}

/// An in-flight transmission.
#[derive(Debug, Clone, Copy)]
struct ActiveTx {
    id: u64,
    st: usize,
    ap: usize,
    start: f64,
    end: f64,
    header_end: f64,
    rate_idx: usize,
    use_rts: bool,
    /// Mean (path-loss only) signal SNR at the receiver at start, dB.
    sig_snr_db: f64,
    collided: bool,
    first_other_start: f64,
    max_other_end: f64,
}

/// The multi-cell simulator.
pub struct SpatialSim {
    cfg: SpatialConfig,
    params: SpatialParams,
    events: EventQueue<Ev>,
    stations: Vec<Station>,
    /// Per-station resumable mobility cursors (amortized O(1) positions).
    walkers: Vec<MobilityWalker>,
    active: Vec<ActiveTx>,
    pending: Vec<ActiveTx>,
    next_tx_id: u64,
    rng: SmallRng,
    // statistics
    frames_sent: u64,
    frames_delivered: u64,
    collisions: u64,
    silent_losses: u64,
    inter_cell_corruptions: u64,
    handoffs: u64,
    audit: RateAudit,
    initial_assoc: Vec<usize>,
    handoff_log: Vec<HandoffRecord>,
    events_processed: u64,
}

impl SpatialSim {
    /// Builds the deployment: lays out the grid, spawns stations, and
    /// associates each with its strongest AP.
    pub fn new(cfg: SpatialConfig) -> Result<Self, crate::spatial::SpatialError> {
        let params = cfg.spatial.resolve()?;
        let walkers = (0..params.n_stations)
            .map(|s| MobilityWalker::new(params.station_seed(cfg.seed, s)))
            .collect();
        let mut sim = SpatialSim {
            events: EventQueue::with_capacity(params.n_stations * 8),
            stations: Vec::with_capacity(params.n_stations),
            walkers,
            active: Vec::new(),
            pending: Vec::new(),
            next_tx_id: 1,
            rng: SmallRng::seed_from_u64(cfg.mac_seed ^ 0x4E45_5453_5041),
            frames_sent: 0,
            frames_delivered: 0,
            collisions: 0,
            silent_losses: 0,
            inter_cell_corruptions: 0,
            handoffs: 0,
            audit: RateAudit::default(),
            initial_assoc: Vec::with_capacity(params.n_stations),
            handoff_log: Vec::new(),
            events_processed: 0,
            params,
            cfg,
        };
        for s in 0..sim.params.n_stations {
            let pos = sim.params.station_pos(sim.cfg.seed, s, 0.0);
            let (ap, _) = sim.params.best_ap(pos);
            sim.initial_assoc.push(ap);
            let station = Station {
                ap,
                epoch: 0,
                link: sim.make_link(s, ap, 0),
                adapter: sim.make_adapter(s),
                retries: 0,
                cw: CW_MIN,
                attempts: 0,
                in_flight: false,
                start_pending: false,
                pending_handoff: None,
                delivered: 0,
            };
            sim.stations.push(station);
        }
        Ok(sim)
    }

    /// The link's fading process is keyed by its endpoints only (a
    /// physical field between two places); the fate stream additionally by
    /// the association epoch, so re-associating never replays coin flips.
    fn make_link(&self, st: usize, ap: usize, epoch: u64) -> StreamingLink {
        let pair = mix_seed(self.cfg.seed ^ 0x4C49_4E4B, ((st as u64) << 20) | ap as u64);
        StreamingLink::new(pair, mix_seed(pair, 0xFA7E ^ epoch), self.params.doppler_hz)
    }

    fn make_adapter(&self, st: usize) -> Box<dyn RateAdapter> {
        // The omniscient oracle needs the station's *current* link, which
        // changes at handoff; the simulator injects the rate at TxStart
        // instead (see `on_tx_start`), so the closure here is never the
        // source of truth.
        self.cfg.adapter.build_with_oracle(
            self.cfg.frame_bits(),
            self.cfg.payload_bytes,
            mix_seed(self.cfg.mac_seed ^ 0xADA7, st as u64),
            Box::new(|_| 0),
        )
    }

    /// Position of station `s` at time `t` via its resumable walker
    /// (identical to `params.station_pos`, amortized O(1) per query).
    fn walker_pos(&mut self, s: usize, t: f64) -> Point {
        self.walkers[s].position(&self.params.mobility, &self.params.bounds, t)
    }

    /// Runs to `cfg.duration` and reports.
    pub fn run(mut self) -> SpatialReport {
        let n = self.params.n_stations;
        for s in 0..n {
            // Slight stagger so the whole floor doesn't draw backoff at the
            // exact same instant.
            self.schedule_tx_start(s, Some(s as f64 * 2e-4));
        }
        if let Some((_, interval, _)) = self.params.roaming {
            for s in 0..n {
                let first = interval * (1.0 + s as f64 / n as f64);
                self.events.schedule(first, Ev::Roam { st: s });
            }
        }

        while let Some(ev) = self.events.pop() {
            if ev.time > self.cfg.duration {
                break;
            }
            self.events_processed += 1;
            match ev.event {
                Ev::TxStart { st } => self.on_tx_start(st),
                Ev::TxEnd { tx } => self.on_tx_end(tx),
                Ev::Outcome { tx } => self.on_outcome(tx),
                Ev::Roam { st } => self.on_roam(st),
            }
        }

        let useful_bits = (self.cfg.payload_bytes - IP_TCP_HEADER) as f64 * 8.0;
        let per_station: Vec<f64> = self
            .stations
            .iter()
            .map(|s| s.delivered as f64 * useful_bits / self.cfg.duration)
            .collect();
        SpatialReport {
            adapter_name: self.cfg.adapter.name().to_string(),
            aggregate_goodput_bps: per_station.iter().sum(),
            per_station_goodput_bps: per_station,
            frames_sent: self.frames_sent,
            frames_delivered: self.frames_delivered,
            collisions: self.collisions,
            silent_losses: self.silent_losses,
            inter_cell_corruptions: self.inter_cell_corruptions,
            handoffs: self.handoffs,
            audit: self.audit,
            initial_assoc: self.initial_assoc,
            handoff_log: self.handoff_log,
            events_processed: self.events_processed,
        }
    }

    /// Schedules the station's next channel-access attempt after DIFS plus
    /// a backoff drawn from its contention window.
    fn schedule_tx_start(&mut self, st: usize, after: Option<f64>) {
        let cw = self.stations[st].cw;
        let slots = self.rng.gen_range(0..=cw) as f64;
        let at = after.unwrap_or(self.events.now()) + DIFS + slots * SLOT;
        self.stations[st].start_pending = true;
        self.events.schedule(at, Ev::TxStart { st });
    }

    fn on_tx_start(&mut self, st: usize) {
        self.stations[st].start_pending = false;
        if self.stations[st].in_flight {
            return;
        }
        let now = self.events.now();
        let pos = self.walker_pos(st, now);

        // Positions of every active transmitter, computed once and shared
        // by the carrier-sense and interference passes below.
        let mut tx_pos = Vec::with_capacity(self.active.len());
        for i in 0..self.active.len() {
            let s = self.active[i].st;
            tx_pos.push(self.walker_pos(s, now));
        }

        // Physical carrier sense: defer while any foreign transmitter is
        // audible above the sensing threshold.
        let mut sensed_until: Option<f64> = None;
        for (tx, &tpos) in self.active.iter().zip(&tx_pos) {
            if tx.st == st {
                continue;
            }
            if self.params.snr_between(tpos, pos) >= self.params.sense_snr_db {
                sensed_until = Some(sensed_until.map_or(tx.end, |u: f64| u.max(tx.end)));
            }
        }
        if let Some(until) = sensed_until {
            self.schedule_tx_start(st, Some(until));
            return;
        }

        // Transmit toward the associated AP.
        let ap = self.stations[st].ap;
        let ap_pos = self.params.aps[ap];
        let sig_snr_db = self.params.snr_between(pos, ap_pos);
        let mut attempt = self.stations[st].adapter.next_attempt(now);
        let oracle_rate = best_rate_for_snr(
            self.stations[st].link.snr_db(sig_snr_db, now),
            self.cfg.frame_bits(),
        );
        if matches!(self.cfg.adapter, AdapterKind::Omniscient) {
            attempt.rate_idx = oracle_rate;
        }
        let rate = softrate_phy::rates::PAPER_RATES[attempt.rate_idx];
        let postamble = self.cfg.adapter.postambles();
        let air = data_airtime(rate, self.cfg.payload_bytes, postamble)
            + if attempt.use_rts {
                rts_cts_overhead()
            } else {
                0.0
            };
        let id = self.next_tx_id;
        self.next_tx_id += 1;
        self.stations[st].attempts += 1;

        let mut tx = ActiveTx {
            id,
            st,
            ap,
            start: now,
            end: now + air,
            header_end: now + air * HEADER_AIRTIME_FRAC,
            rate_idx: attempt.rate_idx,
            use_rts: attempt.use_rts,
            sig_snr_db,
            collided: false,
            first_other_start: f64::INFINITY,
            max_other_end: f64::NEG_INFINITY,
        };

        // Interference bookkeeping: a concurrent transmission corrupts a
        // reception only when the interferer's power at that receiver
        // leaves less than `capture_sir_db` of margin. RTS-protected
        // frames reserved the medium and neither corrupt nor get
        // corrupted (as in the single-cell simulator).
        if !tx.use_rts {
            for (i, &o_pos) in tx_pos.iter().enumerate() {
                let o = self.active[i];
                if o.use_rts {
                    continue;
                }
                // Does the new transmission corrupt `o` at `o`'s receiver?
                // Interference buried below the noise floor (mean SNR of
                // the interferer < 0 dB at the receiver) cannot corrupt
                // anything the noise wasn't already corrupting.
                let int_at_o = self.params.snr_between(pos, self.params.aps[o.ap]);
                if int_at_o >= 0.0 && o.sig_snr_db - int_at_o < self.params.capture_sir_db {
                    let om = &mut self.active[i];
                    om.collided = true;
                    om.first_other_start = om.first_other_start.min(now);
                    om.max_other_end = om.max_other_end.max(tx.end);
                    if o.ap != ap {
                        self.inter_cell_corruptions += 1;
                    }
                }
                // Does `o` corrupt the new transmission at our AP?
                let int_at_mine = self.params.snr_between(o_pos, ap_pos);
                if int_at_mine >= 0.0 && tx.sig_snr_db - int_at_mine < self.params.capture_sir_db {
                    tx.collided = true;
                    tx.first_other_start = tx.first_other_start.min(o.start);
                    tx.max_other_end = tx.max_other_end.max(o.end);
                    if o.ap != ap {
                        self.inter_cell_corruptions += 1;
                    }
                }
            }
        }

        self.stations[st].in_flight = true;
        self.events.schedule(tx.end, Ev::TxEnd { tx: id });
        self.active.push(tx);
        self.frames_sent += 1;

        // Audit against the instantaneous analytic oracle.
        match attempt.rate_idx.cmp(&oracle_rate) {
            std::cmp::Ordering::Greater => self.audit.overselect += 1,
            std::cmp::Ordering::Equal => self.audit.accurate += 1,
            std::cmp::Ordering::Less => self.audit.underselect += 1,
        }
    }

    fn on_tx_end(&mut self, tx_id: u64) {
        let idx = self
            .active
            .iter()
            .position(|t| t.id == tx_id)
            .expect("unknown tx");
        let tx = self.active.swap_remove(idx);
        self.events.schedule(
            tx.end + SIFS + feedback_airtime(),
            Ev::Outcome { tx: tx_id },
        );
        self.pending.push(tx);
    }

    fn on_outcome(&mut self, tx_id: u64) {
        let idx = self
            .pending
            .iter()
            .position(|t| t.id == tx_id)
            .expect("unknown pending tx");
        let tx = self.pending.swap_remove(idx);
        let now = self.events.now();
        let st = tx.st;
        let frame_bits = self.cfg.frame_bits();
        let rate = softrate_phy::rates::PAPER_RATES[tx.rate_idx];
        let postambles = self.cfg.adapter.postambles();

        // Interference-free fate from the streaming channel (also needed
        // under collision for the §6.4 interference-free BER feedback).
        let fate = self.stations[st]
            .link
            .fate(tx.sig_snr_db, tx.start, tx.rate_idx, frame_bits);

        let mut outcome = TxOutcome {
            rate_idx: tx.rate_idx,
            acked: false,
            feedback_received: false,
            ber_feedback: None,
            interference_flagged: false,
            postamble_ack: false,
            snr_feedback_db: None,
            airtime: attempt_airtime(rate, self.cfg.payload_bytes, postambles, tx.use_rts),
            now,
        };

        if tx.collided && !tx.use_rts {
            self.collisions += 1;
            let flagged = hash_uniform(&[tx.id, 0x00DE_7EC7, self.cfg.mac_seed])
                < self.cfg.adapter.detect_prob();
            let timing = CollisionTiming {
                start: tx.start,
                header_end: tx.header_end,
                end: tx.end,
                first_other_start: tx.first_other_start,
                max_other_end: tx.max_other_end,
            };
            if apply_collision_feedback(&mut outcome, &timing, &fate, flagged, postambles) {
                self.silent_losses += 1;
            }
        } else if fate.detected && fate.header_ok {
            outcome.feedback_received = true;
            outcome.acked = fate.delivered;
            outcome.ber_feedback = fate.ber_feedback;
            outcome.snr_feedback_db = fate.snr_feedback_db;
        } else {
            self.silent_losses += 1;
        }

        self.stations[st].adapter.on_outcome(&outcome);

        if outcome.acked {
            self.frames_delivered += 1;
            self.stations[st].delivered += 1;
            self.stations[st].retries = 0;
            self.stations[st].cw = CW_MIN;
        } else {
            let s = &mut self.stations[st];
            s.retries += 1;
            if s.retries > MAX_RETRIES {
                // Frame dropped; the saturated source moves to the next.
                s.retries = 0;
                s.cw = CW_MIN;
            } else {
                s.cw = (s.cw * 2 + 1).min(CW_MAX);
            }
        }

        self.stations[st].in_flight = false;
        if let Some(to) = self.stations[st].pending_handoff.take() {
            self.apply_handoff(st, to, now);
        }
        // Saturated uplink: there is always a next frame.
        if !self.stations[st].start_pending {
            self.schedule_tx_start(st, None);
        }
    }

    fn on_roam(&mut self, st: usize) {
        let Some((hysteresis, interval, _)) = self.params.roaming else {
            return;
        };
        let now = self.events.now();
        let pos = self.walker_pos(st, now);
        let cur = self.stations[st].ap;
        let (best, best_rssi) = self.params.best_ap(pos);
        let cur_rssi = self.params.snr_between(pos, self.params.aps[cur]);
        if best != cur && best_rssi >= cur_rssi + hysteresis {
            if self.stations[st].in_flight {
                self.stations[st].pending_handoff = Some(best);
            } else {
                self.apply_handoff(st, best, now);
            }
        }
        self.events.schedule(now + interval, Ev::Roam { st });
    }

    fn apply_handoff(&mut self, st: usize, to: usize, now: f64) {
        let from = self.stations[st].ap;
        if from == to {
            return;
        }
        let epoch = self.stations[st].epoch + 1;
        self.stations[st].ap = to;
        self.stations[st].epoch = epoch;
        self.stations[st].link = self.make_link(st, to, epoch);
        if matches!(self.params.roaming, Some((_, _, HandoffPolicy::Reset))) {
            self.stations[st].adapter = self.make_adapter(st);
        }
        self.stations[st].retries = 0;
        self.stations[st].cw = CW_MIN;
        self.handoffs += 1;
        self.handoff_log.push(HandoffRecord {
            t: now,
            station: st,
            from,
            to,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::MobilitySpec;
    use crate::spatial::RoamingSpec;

    fn small_spec(cols: usize, spacing: f64, n_stations: usize) -> SpatialSpec {
        SpatialSpec {
            ap_cols: cols,
            ap_rows: 1,
            ap_spacing_m: spacing,
            n_stations,
            snr_ref_db: None,
            path_loss_exp: None,
            sense_snr_db: None,
            capture_sir_db: None,
            doppler_hz: None,
            mobility: MobilitySpec::Static,
            roaming: None,
        }
    }

    fn run(cfg: SpatialConfig) -> SpatialReport {
        SpatialSim::new(cfg).expect("valid spec").run()
    }

    #[test]
    fn single_cell_moves_data() {
        let mut cfg = SpatialConfig::new(AdapterKind::Fixed(2), small_spec(1, 20.0, 3));
        cfg.duration = 2.0;
        let r = run(cfg);
        assert!(r.frames_sent > 100, "sent {}", r.frames_sent);
        assert!(
            r.aggregate_goodput_bps > 1e6,
            "goodput {}",
            r.aggregate_goodput_bps
        );
        assert_eq!(r.handoffs, 0);
        assert_eq!(r.initial_assoc, vec![0, 0, 0]);
    }

    #[test]
    fn far_cells_are_independent_collision_domains() {
        // Two cells 300 m apart: any cross-cell transmitter is >= 150 m
        // from the foreign AP, which at the default path loss puts its
        // interference below the noise floor — the domains cannot mix,
        // while stations near their own AP still deliver.
        let mut cfg = SpatialConfig::new(AdapterKind::Fixed(0), small_spec(2, 300.0, 24));
        cfg.duration = 1.5;
        let r = run(cfg);
        assert_eq!(r.inter_cell_corruptions, 0, "distant cells must not mix");
        // Both cells got stations (uniform spawn over a 2-cell strip) and
        // data moved.
        let aps: std::collections::HashSet<usize> = r.initial_assoc.iter().copied().collect();
        assert_eq!(aps.len(), 2, "spawn should cover both cells");
        assert!(r.frames_delivered > 0);
    }

    #[test]
    fn overlapping_cells_interfere() {
        // APs 12 m apart: heavy overlap. Sensing threshold raised so
        // cross-cell transmitters are *not* deferred to, forcing actual
        // concurrent transmissions.
        let mut spec = small_spec(3, 12.0, 12);
        spec.sense_snr_db = Some(100.0); // nobody ever defers
        let mut cfg = SpatialConfig::new(AdapterKind::Fixed(2), spec);
        cfg.duration = 1.0;
        let r = run(cfg);
        assert!(r.collisions > 0, "overlap with no sensing must collide");
        assert!(r.inter_cell_corruptions > 0);
    }

    #[test]
    fn report_is_deterministic() {
        let mk = || {
            let mut spec = small_spec(2, 25.0, 10);
            spec.mobility = MobilitySpec::RandomWaypoint {
                speed_mps: 1.5,
                pause_s: 1.0,
            };
            spec.roaming = Some(RoamingSpec {
                hysteresis_db: 2.0,
                check_interval_s: None,
                handoff: HandoffPolicy::Preserve,
            });
            let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
            cfg.duration = 2.0;
            cfg
        };
        let a = run(mk());
        let b = run(mk());
        assert_eq!(a.aggregate_goodput_bps, b.aggregate_goodput_bps);
        assert_eq!(a.frames_sent, b.frames_sent);
        assert_eq!(a.handoffs, b.handoffs);
        assert_eq!(a.handoff_log, b.handoff_log);
    }

    #[test]
    fn roaming_walk_hands_off_and_stays_singly_associated() {
        let mut spec = small_spec(3, 24.0, 6);
        spec.mobility = MobilitySpec::RandomWaypoint {
            speed_mps: 12.0, // brisk, to force several cell crossings
            pause_s: 0.0,
        };
        spec.roaming = Some(RoamingSpec {
            hysteresis_db: 1.0,
            check_interval_s: Some(0.1),
            handoff: HandoffPolicy::Preserve,
        });
        let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
        cfg.duration = 6.0;
        let r = run(cfg);
        assert!(r.handoffs > 0, "fast walkers across 3 cells must roam");
        // Invariant: the handoff log forms a consistent chain per station
        // (every `from` equals the previous association), which is exactly
        // the statement that a station is associated to one AP at a time.
        let mut assoc = r.initial_assoc.clone();
        for h in &r.handoff_log {
            assert_eq!(assoc[h.station], h.from, "log out of order");
            assert_ne!(h.from, h.to);
            assert!(h.to < 3);
            assoc[h.station] = h.to;
        }
        assert_eq!(r.handoffs as usize, r.handoff_log.len());
    }

    #[test]
    fn reset_and_preserve_policies_both_run_and_differ() {
        // Cells large enough that SNR swings decades between center and
        // edge: adapter state carried across a handoff is then *wrong*
        // state, and the two policies must measurably diverge.
        let mk = |policy| {
            let mut spec = small_spec(3, 70.0, 6);
            spec.mobility = MobilitySpec::RandomWaypoint {
                speed_mps: 12.0,
                pause_s: 0.0,
            };
            spec.roaming = Some(RoamingSpec {
                hysteresis_db: 1.0,
                check_interval_s: Some(0.1),
                handoff: policy,
            });
            let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
            cfg.duration = 6.0;
            cfg
        };
        let preserve = run(mk(HandoffPolicy::Preserve));
        let reset = run(mk(HandoffPolicy::Reset));
        assert!(preserve.handoffs > 0 && reset.handoffs > 0);
        assert_ne!(
            (preserve.frames_sent, preserve.frames_delivered),
            (reset.frames_sent, reset.frames_delivered),
            "handoff policy must alter rate-adaptation behaviour"
        );
    }

    #[test]
    fn omniscient_tracks_the_oracle_exactly() {
        let mut cfg = SpatialConfig::new(AdapterKind::Omniscient, small_spec(2, 30.0, 4));
        cfg.duration = 1.0;
        let r = run(cfg);
        let (over, acc, under) = r.audit.fractions();
        assert_eq!(over, 0.0);
        assert_eq!(under, 0.0);
        assert_eq!(acc, 1.0);
        assert!(r.frames_delivered > 0);
    }

    #[test]
    fn softrate_adapts_across_the_cell() {
        // Over a cell whose SNR spans many rates, SoftRate must clearly
        // beat the most robust fixed rate and stay within reach of the
        // omniscient oracle.
        let mk = |adapter| {
            let mut cfg = SpatialConfig::new(adapter, small_spec(2, 60.0, 6));
            cfg.duration = 3.0;
            cfg
        };
        let sr = run(mk(AdapterKind::SoftRate));
        let slow = run(mk(AdapterKind::Fixed(0)));
        let omni = run(mk(AdapterKind::Omniscient));
        assert!(
            sr.aggregate_goodput_bps > 1.5 * slow.aggregate_goodput_bps,
            "SoftRate {} vs Fixed-0 {}",
            sr.aggregate_goodput_bps,
            slow.aggregate_goodput_bps
        );
        assert!(
            sr.aggregate_goodput_bps > 0.5 * omni.aggregate_goodput_bps,
            "SoftRate {} vs Omniscient {}",
            sr.aggregate_goodput_bps,
            omni.aggregate_goodput_bps
        );
    }

    #[test]
    fn hundred_stations_three_aps_runs_fast_and_streams() {
        // The acceptance-scale shape: >= 100 stations, >= 3 APs, no trace
        // materialization (structurally impossible here: SpatialSim never
        // touches LinkTrace).
        let mut spec = small_spec(3, 30.0, 120);
        spec.mobility = MobilitySpec::RandomWaypoint {
            speed_mps: 1.5,
            pause_s: 2.0,
        };
        spec.roaming = Some(RoamingSpec {
            hysteresis_db: 3.0,
            check_interval_s: None,
            handoff: HandoffPolicy::Preserve,
        });
        let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
        cfg.duration = 1.0;
        let r = run(cfg);
        assert_eq!(r.per_station_goodput_bps.len(), 120);
        assert!(r.frames_sent > 500, "sent {}", r.frames_sent);
        assert!(r.events_processed > 1000);
    }
}
