//! The multi-cell spatial network simulator.
//!
//! N stations spread over a grid of APs, each saturated with uplink UDP
//! traffic toward its associated AP. Every BSS runs the same 802.11-like
//! DCF as the single-cell simulator — literally: the backoff/feedback
//! state machine is the shared [`MacEngine`](softrate_sim::mac::MacEngine);
//! this module contributes [`SpatialMedium`], the environment where:
//!
//! * **Geometry decides everything.** Carrier sense is physical (a station
//!   defers when another transmitter is audible above a mean-SNR
//!   threshold), so hidden terminals and spatial reuse both *emerge* from
//!   positions rather than from a configured probability. A concurrent
//!   transmission corrupts a reception only when the
//!   signal-to-interference ratio at that receiver falls below the capture
//!   threshold — co-channel interference between overlapping cells, and
//!   clean parallel operation between distant ones.
//! * **Streaming channels.** Frame fates are drawn at transmit time from
//!   per-link [`StreamingLink`]s (Jakes fading + analytic SNR→BER + a
//!   SplitMix64 fate stream). No `LinkTrace` is ever materialized, so
//!   memory stays O(stations) regardless of duration.
//! * **Roaming.** Stations periodically re-evaluate mean RSSI and hand off
//!   to a stronger AP past a hysteresis, with the rate adapter's learned
//!   state either preserved or reset across the handoff (both policies are
//!   first-class, so their cost can be measured).
//!
//! The collision *feedback* semantics reproduce §6.4 exactly as the
//! single-cell simulator does — structurally, because both run the same
//! engine over `softrate_sim::feedback`.

use softrate_channel::analytic::{FrameSuccessMemo, OracleBands};
use softrate_core::adapter::{RateAdapter, TxAttempt};
use softrate_sim::config::AdapterKind;
use softrate_sim::mac::{
    ActiveTx, AttemptInfo, HandoffRecord, MacCore, MacEngine, MacEv, MacParams, Medium,
    PhaseProfile, Port, RunReport,
};
use softrate_sim::timing::{data_airtime, rts_cts_overhead, IP_TCP_HEADER};
use softrate_trace::schema::FrameFate;

use crate::channel::{fate_from_draw_memo, StreamingLink};
use crate::geometry::Point;
use crate::grid::{dist2, ActiveGrid, TxEntry};
use crate::mobility::MobilityWalker;
use crate::spatial::{HandoffPolicy, SpatialParams, SpatialSpec};
use crate::stream::mix_seed;

/// Configuration of one spatial simulation run.
#[derive(Debug, Clone)]
pub struct SpatialConfig {
    /// Simulated seconds.
    pub duration: f64,
    /// Rate-adaptation algorithm every station runs on its uplink.
    pub adapter: AdapterKind,
    /// On-air bytes per data frame (payload + IP/TCP-sized headers).
    pub payload_bytes: usize,
    /// Deployment seed: station spawns, trajectories, fading, and fate
    /// streams all derive from it.
    pub seed: u64,
    /// Seed for MAC-layer randomness (backoff draws, collision-detector
    /// verdicts, adapter tie-breaks). Defaults to `seed`; the scenario
    /// engine sets it to the per-run seed while `seed` stays per-spec, so
    /// every adapter in a matrix is compared over identical channel
    /// realizations (§6.1) with independent MAC randomness per run.
    pub mac_seed: u64,
    /// The deployment.
    pub spatial: SpatialSpec,
}

impl SpatialConfig {
    /// A default-duration run of `spatial` under `adapter`.
    pub fn new(adapter: AdapterKind, spatial: SpatialSpec) -> Self {
        SpatialConfig {
            duration: 10.0,
            adapter,
            payload_bytes: 1440,
            seed: 0x5A7A,
            mac_seed: 0x5A7A,
            spatial,
        }
    }

    /// Data-frame size on the air, bits.
    pub fn frame_bits(&self) -> usize {
        self.payload_bytes * 8
    }
}

/// One station's medium-side state (the rate adapter and retry state
/// live in the engine's matching [`Port`], the contention window in the
/// core's dense `cw` array).
struct Station {
    /// Associated AP.
    ap: usize,
    /// Association epoch (increments on every handoff; keys fate streams).
    epoch: u64,
    /// Streaming channel to the current AP.
    link: StreamingLink,
    /// Handoff decided while a frame was in flight; applied at outcome.
    pending_handoff: Option<usize>,
    delivered: u64,
}

/// Per-attempt data: the receiver AP, the mean signal SNR at start, and
/// the transmitter's position at start (the grid key, and the anchor the
/// drift-padded pruning reasons from).
#[derive(Debug, Clone, Copy)]
struct SpatialTx {
    /// Receiver AP.
    ap: usize,
    /// Mean (path-loss only) signal SNR at the receiver at start, dB.
    sig_snr_db: f64,
    /// Transmitter position at transmit start.
    start_pos: Point,
}

/// Medium-specific events: periodic association re-evaluation.
#[derive(Debug, Clone, Copy)]
struct Roam {
    st: usize,
}

type Core = MacCore<Roam, SpatialTx>;

/// The `t` sentinel that can never equal a real query time's bits (the
/// event loop never produces NaN timestamps), marking memo slots empty.
const NO_TIME: u64 = u64::MAX; // f64::NAN bit patterns vary; u64::MAX is one of them

/// The multi-cell geometric environment with streaming channels.
///
/// Its hot passes run on an exact-semantics fast path (DESIGN.md §7):
/// conservative pruning radii inverted from the path-loss model, a
/// uniform grid over active transmitters, and per-event memo caches for
/// positions, station→AP SNRs, and fading envelopes. Every skipped
/// candidate provably fails the exact check it skipped, and every cache
/// hit returns the bit-identical value a fresh evaluation would — the
/// unregenerated goldens in `tests/goldens/` pin that end to end.
struct SpatialMedium {
    cfg: SpatialConfig,
    params: SpatialParams,
    stations: Vec<Station>,
    /// Per-station resumable mobility cursors (amortized O(1) positions).
    walkers: Vec<MobilityWalker>,
    /// Active transmitters bucketed by transmit-start position.
    grid: ActiveGrid,
    /// Conservative (padded) radius beyond which a transmitter cannot be
    /// sensed: `range_for_threshold(sense_snr_db)`.
    sense_radius_m: f64,
    /// Squared certainly-audible / certainly-inaudible radii for the
    /// sensing threshold (`range_band(sense_snr_db)`): the sense loop
    /// classifies by squared distance and only evaluates the exact
    /// path-loss expression inside the vanishing band between them.
    sense_lo2: f64,
    sense_hi2: f64,
    /// The same bands widened by the drift pad, valid against a
    /// transmitter's *insert-time* position: inside `sense_lo_ins2` the
    /// transmitter is audible wherever it drifted to; outside
    /// `sense_hi_ins2` it is inaudible wherever it drifted to. Between
    /// them the current position decides (a band a few centimeters wide —
    /// almost never entered).
    sense_lo_ins2: f64,
    sense_hi_ins2: f64,
    /// Whether carrier sense walks grid buckets (large floors where the
    /// sensing disk covers a small fraction of the area) or the
    /// end-sorted active list (dense floors where most of the area is
    /// audible anyway and the first audible hit ends the search). Both
    /// paths visit a superset of the audible set and apply the identical
    /// classification, so the choice is invisible in the results.
    sense_via_grid: bool,
    /// Active transmissions sorted by `end` descending (the first audible
    /// entry in this order carries the defer-until maximum).
    by_end: Vec<TxEntry>,
    /// Conservative radius beyond which interference is below the 0 dB
    /// noise floor: `range_for_threshold(0.0)`.
    interference_radius_m: f64,
    /// Maximum distance a station can drift while its frame is on the air
    /// (mobility speed × slowest-rate airtime, padded) — added to every
    /// radius compared against a transmit-*start* position.
    drift_pad_m: f64,
    /// Per-station `(t bits, position)` memo.
    pos_cache: Vec<(u64, Point)>,
    /// Per-`(station, ap)` `(t bits, mean SNR)` memo, station-major.
    snr_ap_cache: Vec<(u64, f64)>,
    /// Per-station `(epoch, t bits, envelope dB)` memo.
    env_cache: Vec<(u64, u64, f64)>,
    /// Shared memo over the analytic BER/success kernels.
    fs_memo: FrameSuccessMemo,
    /// The omniscient oracle as exact threshold compares.
    oracle: OracleBands,
    /// Scratch: carrier-sense candidates (reused, allocation-free).
    sense_scratch: Vec<TxEntry>,
    /// Scratch: per-AP "the new transmitter is within interference range
    /// of this AP" flags (reused).
    ap_near: Vec<bool>,
    // statistics
    inter_cell_corruptions: u64,
    handoffs: u64,
    initial_assoc: Vec<usize>,
    handoff_log: Vec<HandoffRecord>,
}

impl SpatialMedium {
    /// The link's fading process is keyed by its endpoints only (a
    /// physical field between two places); the fate stream additionally by
    /// the association epoch, so re-associating never replays coin flips.
    fn make_link(&self, st: usize, ap: usize, epoch: u64) -> StreamingLink {
        let pair = mix_seed(self.cfg.seed ^ 0x4C49_4E4B, ((st as u64) << 20) | ap as u64);
        StreamingLink::new(pair, mix_seed(pair, 0xFA7E ^ epoch), self.params.doppler_hz)
    }

    /// Position of station `st` at `t`: the per-event memo over the
    /// resumable walker (identical to `params.station_pos`).
    fn pos_at(&mut self, st: usize, t: f64) -> Point {
        let bits = t.to_bits();
        let (cached, p) = self.pos_cache[st];
        if cached == bits {
            return p;
        }
        let p = self.walkers[st].position(&self.params.mobility, &self.params.bounds, t);
        self.pos_cache[st] = (bits, p);
        p
    }

    /// Mean SNR between station `st` (at `t`) and AP `ap`: the ordered-
    /// pair memo over `params.snr_between` (APs never move, so the pair
    /// key is `(station, ap)` and the freshness key is `t`).
    fn snr_to_ap(&mut self, st: usize, ap: usize, t: f64) -> f64 {
        let bits = t.to_bits();
        let idx = st * self.params.aps.len() + ap;
        let (cached, v) = self.snr_ap_cache[idx];
        if cached == bits {
            return v;
        }
        let pos = self.pos_at(st, t);
        let v = self.params.snr_between(pos, self.params.aps[ap]);
        self.snr_ap_cache[idx] = (bits, v);
        v
    }

    /// Fading envelope of `st`'s current link at `t`, dB — memoized so
    /// the oracle audit at transmit time and the fate draw at the
    /// feedback window share one Jakes evaluation. Keyed by association
    /// epoch (a handoff swaps the fading process).
    fn env_at(&mut self, st: usize, t: f64) -> f64 {
        let bits = t.to_bits();
        let epoch = self.stations[st].epoch;
        let (e, cached, v) = self.env_cache[st];
        if e == epoch && cached == bits {
            return v;
        }
        let v = self.stations[st].link.envelope_db(t);
        self.env_cache[st] = (epoch, bits, v);
        v
    }

    /// Whether the transmission behind `e` is audible at `pos` right now
    /// — identical verdict to evaluating `snr_between(current tx
    /// position, pos) >= sense_snr_db` directly. The insert-position
    /// bands (drift-widened) settle almost every candidate without
    /// touching its walker; the thin in-between band falls through to the
    /// current position, and only its own guard band evaluates the exact
    /// path-loss expression.
    fn audible_at(&mut self, e: &TxEntry, pos: Point, now: f64) -> bool {
        let d2_ins = dist2(e.pos, pos);
        if d2_ins <= self.sense_lo_ins2 {
            return true;
        }
        if d2_ins >= self.sense_hi_ins2 {
            return false;
        }
        let tpos = self.pos_at(e.sender, now);
        let d2 = dist2(tpos, pos);
        d2 <= self.sense_lo2
            || (d2 < self.sense_hi2
                && self.params.snr_between(tpos, pos) >= self.params.sense_snr_db)
    }

    /// Carrier sense over the end-descending active list: the first
    /// audible entry carries the maximal end time, so the scan stops
    /// there. Dense floors resolve in ~1 candidate.
    fn sense_sorted(&mut self, st: usize, pos: Point, now: f64) -> Option<f64> {
        for i in 0..self.by_end.len() {
            let e = self.by_end[i];
            if e.sender == st {
                continue;
            }
            if self.audible_at(&e, pos, now) {
                return Some(e.end);
            }
        }
        None
    }

    /// Carrier sense over the grid buckets intersecting the sensing disk:
    /// large floors visit a small fraction of the active set. Candidates
    /// that cannot raise the accumulated horizon are skipped before any
    /// classification.
    fn sense_via_buckets(&mut self, st: usize, pos: Point, now: f64) -> Option<f64> {
        let mut scratch = std::mem::take(&mut self.sense_scratch);
        scratch.clear();
        self.grid
            .for_each_in_disk(pos, self.sense_radius_m + self.drift_pad_m, |e| {
                if e.sender != st {
                    scratch.push(*e);
                }
            });
        let mut sensed_until: Option<f64> = None;
        for e in &scratch {
            if sensed_until.is_some_and(|u| e.end <= u) {
                continue;
            }
            if self.audible_at(e, pos, now) {
                sensed_until = Some(sensed_until.map_or(e.end, |u: f64| u.max(e.end)));
            }
        }
        self.sense_scratch = scratch;
        sensed_until
    }

    /// The AP with the strongest mean RSSI at `st`'s position at `t` —
    /// `params.best_ap` routed through the SNR memo (same comparisons,
    /// same first-wins tie-break).
    fn best_ap_at(&mut self, st: usize, t: f64) -> (usize, f64) {
        let mut best = 0;
        let mut best_rssi = f64::NEG_INFINITY;
        for a in 0..self.params.aps.len() {
            let rssi = self.snr_to_ap(st, a, t);
            if rssi > best_rssi {
                best = a;
                best_rssi = rssi;
            }
        }
        (best, best_rssi)
    }

    fn make_adapter(&self, st: usize) -> Box<dyn RateAdapter> {
        // The omniscient oracle needs the station's *current* link, which
        // changes at handoff; the medium injects the rate at transmit time
        // instead (see `begin_attempt`), so the closure here is never the
        // source of truth.
        self.cfg.adapter.build_with_oracle(
            self.cfg.frame_bits(),
            self.cfg.payload_bytes,
            mix_seed(self.cfg.mac_seed ^ 0xADA7, st as u64),
            Box::new(|_| 0),
        )
    }

    fn apply_handoff(&mut self, core: &mut Core, st: usize, to: usize, now: f64) {
        let from = self.stations[st].ap;
        if from == to {
            return;
        }
        let epoch = self.stations[st].epoch + 1;
        self.stations[st].ap = to;
        self.stations[st].epoch = epoch;
        self.stations[st].link = self.make_link(st, to, epoch);
        if matches!(self.params.roaming, Some((_, _, HandoffPolicy::Reset))) {
            core.ports[st].adapter = self.make_adapter(st);
        }
        core.ports[st].retries = 0;
        core.cw[st] = softrate_sim::timing::CW_MIN;
        self.handoffs += 1;
        self.handoff_log.push(HandoffRecord {
            t: now,
            station: st,
            from,
            to,
        });
    }
}

impl Medium for SpatialMedium {
    type Event = Roam;
    type TxInfo = SpatialTx;

    fn kickoff(&mut self, core: &mut Core) {
        let n = self.params.n_stations;
        for s in 0..n {
            // Slight stagger so the whole floor doesn't draw backoff at the
            // exact same instant.
            let cw = core.cw[s];
            core.schedule_tx_start(s, Some(s as f64 * 2e-4), cw);
        }
        if let Some((_, interval, _)) = self.params.roaming {
            for s in 0..n {
                let first = interval * (1.0 + s as f64 / n as f64);
                core.events.schedule(first, MacEv::Medium(Roam { st: s }));
            }
        }
    }

    /// Saturated uplink: every station always has a frame for its AP.
    fn pick_port(&mut self, st: usize) -> Option<usize> {
        Some(st)
    }

    /// Physical carrier sense: defer while any foreign transmitter is
    /// audible above the sensing threshold.
    ///
    /// Fast path: an idle medium returns immediately; otherwise the pass
    /// visits only candidates the pruning radii admit and classifies
    /// audibility by squared distance (exact path-loss math only inside
    /// the guard bands). The result — the max end time over exactly the
    /// audible set — is unchanged.
    fn carrier_sense(&mut self, core: &Core, st: usize) -> Option<f64> {
        if core.active.is_empty() {
            // Idle medium: nothing can be sensed, and nothing is worth
            // computing (the attempt hooks fetch positions on demand).
            return None;
        }
        let now = core.now();
        let pos = self.pos_at(st, now);
        if self.sense_via_grid {
            self.sense_via_buckets(st, pos, now)
        } else {
            self.sense_sorted(st, pos, now)
        }
    }

    fn begin_attempt(
        &mut self,
        st: usize,
        _port: usize,
        now: f64,
        attempt: &mut TxAttempt,
    ) -> AttemptInfo<SpatialTx> {
        // Transmit toward the associated AP. Position, mean SNR, and
        // envelope all come from the per-event memos (the carrier-sense
        // pass typically warmed the position), and the oracle runs over
        // the memoized analytic kernels — identical values throughout.
        let ap = self.stations[st].ap;
        let start_pos = self.pos_at(st, now);
        let sig_snr_db = self.snr_to_ap(st, ap, now);
        let env_db = self.env_at(st, now);
        let oracle_rate = self.oracle.best_rate(sig_snr_db + env_db);
        if matches!(self.cfg.adapter, AdapterKind::Omniscient) {
            attempt.rate_idx = oracle_rate;
        }
        AttemptInfo {
            payload_bytes: self.cfg.payload_bytes,
            counts_as_data: true,
            // Audit against the instantaneous analytic oracle.
            audit_best: Some(oracle_rate),
            timeline: false,
            info: SpatialTx {
                ap,
                sig_snr_db,
                start_pos,
            },
        }
    }

    /// Interference bookkeeping: a concurrent transmission corrupts a
    /// reception only when the interferer's power at that receiver leaves
    /// less than `capture_sir_db` of margin. RTS-protected frames reserved
    /// the medium and neither corrupt nor get corrupted (as in the
    /// single-cell medium).
    ///
    /// Fast path: both corruption directions demand the interferer's mean
    /// SNR at the victim's AP to clear the 0 dB noise floor, so any pair
    /// separated by more than the interference radius (drift-padded when
    /// the anchor is a transmit-start position) is skipped before the SNR
    /// math — it provably cannot corrupt. The engine pushes `tx` onto the
    /// active set right after this hook, so the grid insert lives here.
    fn mark_collisions(
        &mut self,
        tx: &mut ActiveTx<SpatialTx>,
        active: &mut [ActiveTx<SpatialTx>],
    ) {
        let entry = TxEntry {
            sender: tx.sender,
            pos: tx.info.start_pos,
            end: tx.end,
        };
        // Only the plan carrier sense consults is maintained (the choice
        // is fixed at construction).
        if self.sense_via_grid {
            self.grid.insert(entry);
        } else {
            // Keep `by_end` sorted by end descending (ties keep insertion
            // order; the active set is small, so the shift is trivial).
            let at = self
                .by_end
                .iter()
                .position(|e| e.end < entry.end)
                .unwrap_or(self.by_end.len());
            self.by_end.insert(at, entry);
        }
        if tx.use_rts {
            return;
        }
        let now = tx.start;
        let my_pos = tx.info.start_pos;
        let ap_pos = self.params.aps[tx.info.ap];
        let r_int2 = self.interference_radius_m * self.interference_radius_m;
        let r_int_drift = self.interference_radius_m + self.drift_pad_m;
        let r_int_drift2 = r_int_drift * r_int_drift;

        // Which APs can the *new* transmitter possibly interfere at? Its
        // position is exact (no drift pad); one squared distance per AP.
        let mut ap_near = std::mem::take(&mut self.ap_near);
        ap_near.clear();
        ap_near.extend(self.params.aps.iter().map(|&a| dist2(my_pos, a) <= r_int2));

        #[allow(clippy::needless_range_loop)] // `active[i]` is re-borrowed mutably below
        for i in 0..active.len() {
            let o = active[i];
            if o.use_rts {
                continue;
            }
            // Does the new transmission corrupt `o` at `o`'s receiver?
            // Interference buried below the noise floor (mean SNR of the
            // interferer < 0 dB at the receiver) cannot corrupt anything
            // the noise wasn't already corrupting — and beyond the
            // interference radius it provably is buried.
            if ap_near[o.info.ap] {
                let int_at_o = self.snr_to_ap(tx.sender, o.info.ap, now);
                if int_at_o >= 0.0 && o.info.sig_snr_db - int_at_o < self.params.capture_sir_db {
                    let om = &mut active[i];
                    om.collided = true;
                    om.first_other_start = om.first_other_start.min(tx.start);
                    om.max_other_end = om.max_other_end.max(tx.end);
                    if o.info.ap != tx.info.ap {
                        self.inter_cell_corruptions += 1;
                    }
                }
            }
            // Does `o` corrupt the new transmission at our AP? `o` may
            // have drifted since its start position was recorded, so the
            // prune radius carries the drift pad.
            if dist2(o.info.start_pos, ap_pos) <= r_int_drift2 {
                let int_at_mine = self.snr_to_ap(o.sender, tx.info.ap, now);
                if int_at_mine >= 0.0
                    && tx.info.sig_snr_db - int_at_mine < self.params.capture_sir_db
                {
                    tx.collided = true;
                    tx.first_other_start = tx.first_other_start.min(o.start);
                    tx.max_other_end = tx.max_other_end.max(o.end);
                    if o.info.ap != tx.info.ap {
                        self.inter_cell_corruptions += 1;
                    }
                }
            }
        }
        self.ap_near = ap_near;
    }

    /// The transmission left the air: drop it from both indices.
    fn on_air_end(&mut self, tx: &ActiveTx<SpatialTx>) {
        if self.sense_via_grid {
            self.grid.remove(tx.sender, tx.info.start_pos);
        } else if let Some(i) = self.by_end.iter().position(|e| e.sender == tx.sender) {
            self.by_end.remove(i);
        }
    }

    /// Interference-free fate from the streaming channel — one coin draw
    /// as always, with the envelope shared from the transmit-time memo
    /// (same `t`, same link ⇒ same Jakes evaluation) and the BER/success
    /// pair from the kernel memo.
    fn fate(&mut self, tx: &ActiveTx<SpatialTx>) -> FrameFate {
        let u = self.stations[tx.sender].link.draw();
        let env_db = self.env_at(tx.sender, tx.start);
        fate_from_draw_memo(
            u,
            tx.info.sig_snr_db + env_db,
            tx.rate_idx,
            tx.payload_bytes * 8,
            &mut self.fs_memo,
        )
    }

    fn on_acked(&mut self, core: &mut Core, tx: &ActiveTx<SpatialTx>) {
        core.stats.frames_delivered += 1;
        self.stations[tx.sender].delivered += 1;
    }

    fn on_dropped(&mut self, _core: &mut Core, _tx: &ActiveTx<SpatialTx>) {
        // Frame dropped; the saturated source moves to the next.
    }

    fn after_outcome(&mut self, core: &mut Core, st: usize) {
        if let Some(to) = self.stations[st].pending_handoff.take() {
            let now = core.now();
            self.apply_handoff(core, st, to, now);
        }
        // Saturated uplink: there is always a next frame.
        if !core.senders[st].start_pending {
            let cw = core.cw[st];
            core.schedule_tx_start(st, None, cw);
        }
    }

    /// Periodic association re-evaluation.
    fn on_event(&mut self, core: &mut Core, Roam { st }: Roam) {
        let Some((hysteresis, interval, _)) = self.params.roaming else {
            return;
        };
        let now = core.now();
        let cur = self.stations[st].ap;
        let (best, best_rssi) = self.best_ap_at(st, now);
        let cur_rssi = self.snr_to_ap(st, cur, now);
        if best != cur && best_rssi >= cur_rssi + hysteresis {
            if core.senders[st].busy {
                self.stations[st].pending_handoff = Some(best);
            } else {
                self.apply_handoff(core, st, best, now);
            }
        }
        core.events
            .schedule(now + interval, MacEv::Medium(Roam { st }));
    }
}

/// The multi-cell simulator: a [`MacEngine`] configured with a
/// [`SpatialMedium`].
pub struct SpatialSim {
    engine: MacEngine<SpatialMedium>,
}

impl SpatialSim {
    /// Builds the deployment: lays out the grid, spawns stations, and
    /// associates each with its strongest AP.
    pub fn new(cfg: SpatialConfig) -> Result<Self, crate::spatial::SpatialError> {
        let params = cfg.spatial.resolve()?;
        let walkers = (0..params.n_stations)
            .map(|s| MobilityWalker::new(params.station_seed(cfg.seed, s)))
            .collect();
        let mac_params = MacParams {
            postambles: cfg.adapter.postambles(),
            detect_prob: cfg.adapter.detect_prob(),
            backoff_seed: cfg.mac_seed ^ 0x4E45_5453_5041,
            collision_seed: cfg.mac_seed,
        };
        let n = params.n_stations;
        let n_aps = params.aps.len();
        // Conservative pruning radii: exact inversions of the path-loss
        // model for the sensing threshold and the 0 dB interference
        // floor, plus the worst-case drift of a transmitter while its
        // frame is on the air (slowest-rate airtime + RTS/CTS, at the
        // mobility model's speed).
        let (sense_lo, sense_radius_m) = params.range_band(params.sense_snr_db);
        // A negative `lo` means "no distance certainly passes"; keep the
        // squared form negative so `d² <= lo²` stays unsatisfiable.
        let sense_lo2 = if sense_lo < 0.0 {
            -1.0
        } else {
            sense_lo * sense_lo
        };
        let sense_hi2 = sense_radius_m * sense_radius_m;
        let interference_radius_m = params.range_for_threshold(0.0);
        let area = params.bounds.width() * params.bounds.height();
        let max_airtime: f64 = softrate_phy::rates::PAPER_RATES
            .iter()
            .map(|&r| data_airtime(r, cfg.payload_bytes, cfg.adapter.postambles()))
            .fold(0.0, f64::max)
            + rts_cts_overhead();
        let drift_pad_m = params.mobility.speed_mps() * max_airtime * (1.0 + 1e-9) + 1e-9;
        let grid = ActiveGrid::new(params.bounds, sense_radius_m + drift_pad_m);
        let sense_lo_ins = sense_lo - drift_pad_m;
        let sense_lo_ins2 = if sense_lo_ins < 0.0 {
            -1.0
        } else {
            sense_lo_ins * sense_lo_ins
        };
        let sense_hi_ins = sense_radius_m + drift_pad_m;
        // Bucket walks pay off when the sensing disk covers a small
        // fraction of the floor; on dense floors the end-sorted scan's
        // first-hit exit wins. Either plan classifies identically.
        let sense_via_grid = std::f64::consts::PI * sense_hi_ins * sense_hi_ins * 4.0 < area;
        let mut medium = SpatialMedium {
            stations: Vec::with_capacity(n),
            walkers,
            grid,
            sense_radius_m,
            sense_lo2,
            sense_hi2,
            sense_lo_ins2,
            sense_hi_ins2: sense_hi_ins * sense_hi_ins,
            sense_via_grid,
            by_end: Vec::new(),
            interference_radius_m,
            drift_pad_m,
            pos_cache: vec![(NO_TIME, Point { x: 0.0, y: 0.0 }); n],
            snr_ap_cache: vec![(NO_TIME, 0.0); n * n_aps],
            env_cache: vec![(0, NO_TIME, 0.0); n],
            fs_memo: FrameSuccessMemo::new(),
            oracle: OracleBands::new(cfg.frame_bits()),
            sense_scratch: Vec::new(),
            ap_near: Vec::with_capacity(n_aps),
            inter_cell_corruptions: 0,
            handoffs: 0,
            initial_assoc: Vec::with_capacity(n),
            handoff_log: Vec::new(),
            params,
            cfg,
        };
        let mut ports = Vec::with_capacity(n);
        for s in 0..n {
            let pos = medium.params.station_pos(medium.cfg.seed, s, 0.0);
            let (ap, _) = medium.params.best_ap(pos);
            medium.initial_assoc.push(ap);
            let link = medium.make_link(s, ap, 0);
            ports.push(Port::new(medium.make_adapter(s)));
            medium.stations.push(Station {
                ap,
                epoch: 0,
                link,
                pending_handoff: None,
                delivered: 0,
            });
        }
        Ok(SpatialSim {
            engine: MacEngine::new(n, ports, mac_params, medium),
        })
    }

    /// Runs to `cfg.duration` and reports.
    pub fn run(mut self) -> RunReport {
        let duration = self.engine.medium.cfg.duration;
        self.engine.run(duration);
        self.report()
    }

    /// [`SpatialSim::run`] with per-phase wall-time accounting (identical
    /// results; see [`MacEngine::run_profiled`]).
    pub fn run_profiled(mut self) -> (RunReport, PhaseProfile) {
        let duration = self.engine.medium.cfg.duration;
        let profile = self.engine.run_profiled(duration);
        (self.report(), profile)
    }

    fn report(self) -> RunReport {
        let m = self.engine.medium;
        let stats = self.engine.core.stats;
        let duration = m.cfg.duration;
        let useful_bits = (m.cfg.payload_bytes - IP_TCP_HEADER) as f64 * 8.0;
        let per_station: Vec<f64> = m
            .stations
            .iter()
            .map(|s| s.delivered as f64 * useful_bits / duration)
            .collect();
        RunReport {
            adapter_name: m.cfg.adapter.name().to_string(),
            aggregate_goodput_bps: per_station.iter().sum(),
            per_flow_goodput_bps: per_station,
            audit: stats.audit,
            frames_sent: stats.frames_sent,
            frames_delivered: stats.frames_delivered,
            collisions: stats.collisions,
            silent_losses: stats.silent_losses,
            rate_timeline: Vec::new(),
            inter_cell_corruptions: m.inter_cell_corruptions,
            handoffs: m.handoffs,
            initial_assoc: m.initial_assoc,
            handoff_log: m.handoff_log,
            events_processed: stats.events_processed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::MobilitySpec;
    use crate::spatial::RoamingSpec;

    fn small_spec(cols: usize, spacing: f64, n_stations: usize) -> SpatialSpec {
        SpatialSpec {
            ap_cols: cols,
            ap_rows: 1,
            ap_spacing_m: spacing,
            n_stations,
            snr_ref_db: None,
            path_loss_exp: None,
            sense_snr_db: None,
            capture_sir_db: None,
            doppler_hz: None,
            mobility: MobilitySpec::Static,
            roaming: None,
        }
    }

    fn run(cfg: SpatialConfig) -> RunReport {
        SpatialSim::new(cfg).expect("valid spec").run()
    }

    #[test]
    fn single_cell_moves_data() {
        let mut cfg = SpatialConfig::new(AdapterKind::Fixed(2), small_spec(1, 20.0, 3));
        cfg.duration = 2.0;
        let r = run(cfg);
        assert!(r.frames_sent > 100, "sent {}", r.frames_sent);
        assert!(
            r.aggregate_goodput_bps > 1e6,
            "goodput {}",
            r.aggregate_goodput_bps
        );
        assert_eq!(r.handoffs, 0);
        assert_eq!(r.initial_assoc, vec![0, 0, 0]);
    }

    #[test]
    fn far_cells_are_independent_collision_domains() {
        // Two cells 300 m apart: any cross-cell transmitter is >= 150 m
        // from the foreign AP, which at the default path loss puts its
        // interference below the noise floor — the domains cannot mix,
        // while stations near their own AP still deliver.
        let mut cfg = SpatialConfig::new(AdapterKind::Fixed(0), small_spec(2, 300.0, 24));
        cfg.duration = 1.5;
        let r = run(cfg);
        assert_eq!(r.inter_cell_corruptions, 0, "distant cells must not mix");
        // Both cells got stations (uniform spawn over a 2-cell strip) and
        // data moved.
        let aps: std::collections::HashSet<usize> = r.initial_assoc.iter().copied().collect();
        assert_eq!(aps.len(), 2, "spawn should cover both cells");
        assert!(r.frames_delivered > 0);
    }

    #[test]
    fn overlapping_cells_interfere() {
        // APs 12 m apart: heavy overlap. Sensing threshold raised so
        // cross-cell transmitters are *not* deferred to, forcing actual
        // concurrent transmissions.
        let mut spec = small_spec(3, 12.0, 12);
        spec.sense_snr_db = Some(100.0); // nobody ever defers
        let mut cfg = SpatialConfig::new(AdapterKind::Fixed(2), spec);
        cfg.duration = 1.0;
        let r = run(cfg);
        assert!(r.collisions > 0, "overlap with no sensing must collide");
        assert!(r.inter_cell_corruptions > 0);
    }

    #[test]
    fn report_is_deterministic() {
        let mk = || {
            let mut spec = small_spec(2, 25.0, 10);
            spec.mobility = MobilitySpec::RandomWaypoint {
                speed_mps: 1.5,
                pause_s: 1.0,
            };
            spec.roaming = Some(RoamingSpec {
                hysteresis_db: 2.0,
                check_interval_s: None,
                handoff: HandoffPolicy::Preserve,
            });
            let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
            cfg.duration = 2.0;
            cfg
        };
        let a = run(mk());
        let b = run(mk());
        assert_eq!(a.aggregate_goodput_bps, b.aggregate_goodput_bps);
        assert_eq!(a.frames_sent, b.frames_sent);
        assert_eq!(a.handoffs, b.handoffs);
        assert_eq!(a.handoff_log, b.handoff_log);
    }

    #[test]
    fn roaming_walk_hands_off_and_stays_singly_associated() {
        let mut spec = small_spec(3, 24.0, 6);
        spec.mobility = MobilitySpec::RandomWaypoint {
            speed_mps: 12.0, // brisk, to force several cell crossings
            pause_s: 0.0,
        };
        spec.roaming = Some(RoamingSpec {
            hysteresis_db: 1.0,
            check_interval_s: Some(0.1),
            handoff: HandoffPolicy::Preserve,
        });
        let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
        cfg.duration = 6.0;
        let r = run(cfg);
        assert!(r.handoffs > 0, "fast walkers across 3 cells must roam");
        // Invariant: the handoff log forms a consistent chain per station
        // (every `from` equals the previous association), which is exactly
        // the statement that a station is associated to one AP at a time.
        let mut assoc = r.initial_assoc.clone();
        for h in &r.handoff_log {
            assert_eq!(assoc[h.station], h.from, "log out of order");
            assert_ne!(h.from, h.to);
            assert!(h.to < 3);
            assoc[h.station] = h.to;
        }
        assert_eq!(r.handoffs as usize, r.handoff_log.len());
    }

    #[test]
    fn reset_and_preserve_policies_both_run_and_differ() {
        // Cells large enough that SNR swings decades between center and
        // edge: adapter state carried across a handoff is then *wrong*
        // state, and the two policies must measurably diverge.
        let mk = |policy| {
            let mut spec = small_spec(3, 70.0, 6);
            spec.mobility = MobilitySpec::RandomWaypoint {
                speed_mps: 12.0,
                pause_s: 0.0,
            };
            spec.roaming = Some(RoamingSpec {
                hysteresis_db: 1.0,
                check_interval_s: Some(0.1),
                handoff: policy,
            });
            let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
            cfg.duration = 6.0;
            cfg
        };
        let preserve = run(mk(HandoffPolicy::Preserve));
        let reset = run(mk(HandoffPolicy::Reset));
        assert!(preserve.handoffs > 0 && reset.handoffs > 0);
        assert_ne!(
            (preserve.frames_sent, preserve.frames_delivered),
            (reset.frames_sent, reset.frames_delivered),
            "handoff policy must alter rate-adaptation behaviour"
        );
    }

    #[test]
    fn omniscient_tracks_the_oracle_exactly() {
        let mut cfg = SpatialConfig::new(AdapterKind::Omniscient, small_spec(2, 30.0, 4));
        cfg.duration = 1.0;
        let r = run(cfg);
        let (over, acc, under) = r.audit.fractions();
        assert_eq!(over, 0.0);
        assert_eq!(under, 0.0);
        assert_eq!(acc, 1.0);
        assert!(r.frames_delivered > 0);
    }

    #[test]
    fn softrate_adapts_across_the_cell() {
        // Over a cell whose SNR spans many rates, SoftRate must clearly
        // beat the most robust fixed rate and stay within reach of the
        // omniscient oracle.
        let mk = |adapter| {
            let mut cfg = SpatialConfig::new(adapter, small_spec(2, 60.0, 6));
            cfg.duration = 3.0;
            cfg
        };
        let sr = run(mk(AdapterKind::SoftRate));
        let slow = run(mk(AdapterKind::Fixed(0)));
        let omni = run(mk(AdapterKind::Omniscient));
        assert!(
            sr.aggregate_goodput_bps > 1.5 * slow.aggregate_goodput_bps,
            "SoftRate {} vs Fixed-0 {}",
            sr.aggregate_goodput_bps,
            slow.aggregate_goodput_bps
        );
        assert!(
            sr.aggregate_goodput_bps > 0.5 * omni.aggregate_goodput_bps,
            "SoftRate {} vs Omniscient {}",
            sr.aggregate_goodput_bps,
            omni.aggregate_goodput_bps
        );
    }

    /// The fast path's two carrier-sense plans (grid buckets vs the
    /// end-sorted scan) must be indistinguishable in every output — they
    /// visit different candidate supersets but apply the identical
    /// classification. Forcing each plan over the same deployment pins
    /// that, complementing the byte-identical goldens (which pin the fast
    /// path against the pre-optimization engine).
    #[test]
    fn grid_and_sorted_sense_plans_are_result_identical() {
        let mk = || {
            let mut spec = small_spec(3, 40.0, 24);
            spec.mobility = MobilitySpec::RandomWaypoint {
                speed_mps: 3.0,
                pause_s: 0.5,
            };
            spec.sense_snr_db = Some(20.0); // short sensing range: both plans plausible
            spec.roaming = Some(RoamingSpec {
                hysteresis_db: 2.0,
                check_interval_s: None,
                handoff: HandoffPolicy::Preserve,
            });
            let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
            cfg.duration = 3.0;
            cfg
        };
        let forced = |via_grid: bool| {
            let mut sim = SpatialSim::new(mk()).expect("valid spec");
            sim.engine.medium.sense_via_grid = via_grid;
            sim.run()
        };
        let g = forced(true);
        let s = forced(false);
        assert_eq!(g.aggregate_goodput_bps, s.aggregate_goodput_bps);
        assert_eq!(g.per_flow_goodput_bps, s.per_flow_goodput_bps);
        assert_eq!(g.frames_sent, s.frames_sent);
        assert_eq!(g.frames_delivered, s.frames_delivered);
        assert_eq!(g.collisions, s.collisions);
        assert_eq!(g.silent_losses, s.silent_losses);
        assert_eq!(g.inter_cell_corruptions, s.inter_cell_corruptions);
        assert_eq!(g.handoff_log, s.handoff_log);
        assert_eq!(g.events_processed, s.events_processed);
    }

    #[test]
    fn hundred_stations_three_aps_runs_fast_and_streams() {
        // The acceptance-scale shape: >= 100 stations, >= 3 APs, no trace
        // materialization (structurally impossible here: SpatialSim never
        // touches LinkTrace).
        let mut spec = small_spec(3, 30.0, 120);
        spec.mobility = MobilitySpec::RandomWaypoint {
            speed_mps: 1.5,
            pause_s: 2.0,
        };
        spec.roaming = Some(RoamingSpec {
            hysteresis_db: 3.0,
            check_interval_s: None,
            handoff: HandoffPolicy::Preserve,
        });
        let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
        cfg.duration = 1.0;
        let r = run(cfg);
        assert_eq!(r.per_flow_goodput_bps.len(), 120);
        assert!(r.frames_sent > 500, "sent {}", r.frames_sent);
        assert!(r.events_processed > 1000);
    }
}
