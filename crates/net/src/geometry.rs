//! 2-D geometry: positions, distances, the AP grid, and distance-based
//! path loss.
//!
//! The spatial simulator works in meters on a flat plane. Large-scale
//! received power follows the log-distance path-loss law: the mean SNR of
//! a link at distance `d` is `snr_ref_db - 10 * path_loss_exp * log10(d)`
//! (clamped below 1 m), which feeds the workspace's calibrated analytic
//! SNR→BER map (`softrate_channel::analytic`). Small-scale fading rides on
//! top per link (see [`crate::channel`]).

use serde::{Deserialize, Serialize};

/// A point in the plane, meters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate, meters.
    pub x: f64,
    /// Y coordinate, meters.
    pub y: f64,
}

impl Point {
    /// Euclidean distance to `other`.
    pub fn dist(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// The axis-aligned rectangle stations live in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Minimum corner.
    pub min: Point,
    /// Maximum corner.
    pub max: Point,
}

impl Rect {
    /// Width in meters.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in meters.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// The point at fractional coordinates `(u, v)` in `[0,1]²`.
    pub fn lerp(&self, u: f64, v: f64) -> Point {
        Point {
            x: self.min.x + u * self.width(),
            y: self.min.y + v * self.height(),
        }
    }

    /// Reflects an unbounded coordinate offset into the rectangle
    /// ("bouncing" off the walls): the triangular fold of `min + offset`.
    pub fn fold(&self, offset_x: f64, offset_y: f64) -> Point {
        Point {
            x: self.min.x + fold_axis(offset_x, self.width()),
            y: self.min.y + fold_axis(offset_y, self.height()),
        }
    }
}

/// Triangular fold of `x` into `[0, w]` (reflecting boundaries).
fn fold_axis(x: f64, w: f64) -> f64 {
    if w <= 0.0 {
        return 0.0;
    }
    let m = x.rem_euclid(2.0 * w);
    if m <= w {
        m
    } else {
        2.0 * w - m
    }
}

/// AP positions for a `cols x rows` grid with the given spacing, anchored
/// at the origin (AP 0 at `(0, 0)`, row-major order).
pub fn ap_grid(cols: usize, rows: usize, spacing_m: f64) -> Vec<Point> {
    let mut aps = Vec::with_capacity(cols * rows);
    for r in 0..rows {
        for c in 0..cols {
            aps.push(Point {
                x: c as f64 * spacing_m,
                y: r as f64 * spacing_m,
            });
        }
    }
    aps
}

/// The station area for an AP grid: the grid's bounding box padded by half
/// a cell on every side, so edge cells have edges too.
pub fn grid_bounds(cols: usize, rows: usize, spacing_m: f64) -> Rect {
    let pad = spacing_m / 2.0;
    Rect {
        min: Point { x: -pad, y: -pad },
        max: Point {
            x: (cols.saturating_sub(1)) as f64 * spacing_m + pad,
            y: (rows.saturating_sub(1)) as f64 * spacing_m + pad,
        },
    }
}

/// Mean (path-loss only) SNR in dB of a link at distance `d_m`, given the
/// reference SNR at 1 m and the path-loss exponent. Distances below 1 m
/// clamp to the reference.
pub fn mean_snr_db(snr_ref_db: f64, path_loss_exp: f64, d_m: f64) -> f64 {
    snr_ref_db - 10.0 * path_loss_exp * d_m.max(1.0).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_and_bounds_shapes() {
        let aps = ap_grid(3, 2, 10.0);
        assert_eq!(aps.len(), 6);
        assert_eq!(aps[0], Point { x: 0.0, y: 0.0 });
        assert_eq!(aps[2], Point { x: 20.0, y: 0.0 });
        assert_eq!(aps[3], Point { x: 0.0, y: 10.0 });
        let b = grid_bounds(3, 2, 10.0);
        assert_eq!(b.min, Point { x: -5.0, y: -5.0 });
        assert_eq!(b.max, Point { x: 25.0, y: 15.0 });
        assert_eq!(b.width(), 30.0);
    }

    #[test]
    fn single_ap_bounds_are_one_cell() {
        let b = grid_bounds(1, 1, 20.0);
        assert_eq!(b.width(), 20.0);
        assert_eq!(b.height(), 20.0);
    }

    #[test]
    fn fold_reflects_at_walls() {
        let b = grid_bounds(1, 1, 10.0);
        // Walk 12 m right from the left wall of a 10 m box: bounce to 8.
        let p = b.fold(12.0, 0.0);
        assert!((p.x - (b.min.x + 8.0)).abs() < 1e-12);
        // A full out-and-back period returns to the start.
        let q = b.fold(20.0, 0.0);
        assert!((q.x - b.min.x).abs() < 1e-12);
    }

    #[test]
    fn path_loss_is_monotone_and_clamped() {
        assert_eq!(mean_snr_db(55.0, 2.7, 0.5), 55.0);
        assert_eq!(mean_snr_db(55.0, 2.7, 1.0), 55.0);
        let near = mean_snr_db(55.0, 2.7, 10.0);
        let far = mean_snr_db(55.0, 2.7, 40.0);
        assert!(near > far);
        // 10 m at exponent 2.7 costs 27 dB.
        assert!((near - 28.0).abs() < 1e-9);
    }

    #[test]
    fn distances() {
        let a = Point { x: 0.0, y: 0.0 };
        let b = Point { x: 3.0, y: 4.0 };
        assert_eq!(a.dist(b), 5.0);
    }
}
