//! # softrate-net — multi-cell spatial network simulation
//!
//! The scale layer of the SoftRate reproduction: many overlapping BSSs,
//! station mobility and roaming, and **streaming channels** that draw frame
//! fates on demand instead of precomputing a `LinkTrace` per link — O(1)
//! memory per link, which is what lets one process simulate hundreds of
//! stations for minutes of sim time.
//!
//! * [`geometry`] — points, the AP grid, log-distance path loss.
//! * [`mobility`] — static / linear / random-waypoint models, all pure
//!   functions of time.
//! * [`stream`] — SplitMix64, the per-link deterministic coin stream.
//! * [`channel`] — [`channel::StreamingLink`]: Jakes fading + the
//!   calibrated analytic SNR→BER map, sampled at transmit time.
//! * [`grid`] — the uniform spatial index over active transmitters that
//!   the fast path prunes carrier-sense/interference candidates with.
//! * [`spatial`] — the `[topology.spatial]` specification and its resolved
//!   parameters (grid, thresholds, roaming policy).
//! * [`sim`] — the multi-cell simulator: the shared
//!   `softrate_sim::mac::MacEngine` configured with a spatial medium —
//!   physical carrier sense, SIR-based inter-cell interference with the
//!   §6.4 collision-feedback semantics, and RSSI-threshold handoff with
//!   adapter state preserved or reset.
//!
//! Scenario documents reach this layer through `softrate-scenario`'s
//! `[topology.spatial]` table; the `netscale` bench binary measures its
//! events/sec scaling.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod channel;
pub mod geometry;
pub mod grid;
pub mod mobility;
pub mod sim;
pub mod spatial;
pub mod stream;

/// Convenient glob-import of the most common items.
pub mod prelude {
    pub use crate::channel::StreamingLink;
    pub use crate::geometry::{ap_grid, grid_bounds, mean_snr_db, Point, Rect};
    pub use crate::mobility::{MobilitySpec, MobilityWalker};
    pub use crate::sim::{SpatialConfig, SpatialSim};
    pub use crate::spatial::{HandoffPolicy, RoamingSpec, SpatialParams, SpatialSpec};
    pub use crate::stream::{mix_seed, SplitMix64};
}
