//! The spatial topology specification and its resolved parameter set.
//!
//! [`SpatialSpec`] is the declarative surface (`[topology.spatial]` in a
//! scenario document): an AP grid, a station population, a mobility model,
//! and optional RSSI-threshold roaming. [`SpatialSpec::resolve`] validates
//! it and applies defaults, producing the [`SpatialParams`] the simulator
//! consumes.

use serde::{Deserialize, Serialize};

use crate::geometry::{ap_grid, grid_bounds, mean_snr_db, Point, Rect};
use crate::mobility::MobilitySpec;
use crate::stream::mix_seed;

/// Carrier wavelength assumed when deriving Doppler spread from station
/// speed (5 GHz band, ~6 cm).
pub const WAVELENGTH_M: f64 = 0.06;

/// Residual Doppler for nominally static stations (people and doors moving
/// in the environment keep the channel from freezing entirely).
pub const STATIC_DOPPLER_HZ: f64 = 2.0;

/// Error resolving a spatial topology.
#[derive(Debug, Clone)]
pub struct SpatialError(pub String);

impl std::fmt::Display for SpatialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SpatialError {}

/// What happens to a station's rate-adaptation state at handoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HandoffPolicy {
    /// The adapter instance (and all its learned state) moves to the new
    /// AP untouched — the state it carries describes the *old* channel.
    Preserve,
    /// The adapter is rebuilt from scratch on the new link.
    Reset,
}

/// RSSI-threshold roaming configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoamingSpec {
    /// How many dB stronger another AP must be before the station roams.
    pub hysteresis_db: f64,
    /// Seconds between association re-evaluations (default 0.25).
    pub check_interval_s: Option<f64>,
    /// Adapter state policy across handoff.
    pub handoff: HandoffPolicy,
}

/// The `[topology.spatial]` document: a multi-cell spatial deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialSpec {
    /// AP grid columns.
    pub ap_cols: usize,
    /// AP grid rows.
    pub ap_rows: usize,
    /// Grid spacing in meters.
    pub ap_spacing_m: f64,
    /// Number of stations spawned uniformly over the grid area.
    pub n_stations: usize,
    /// Mean SNR at 1 m from any transmitter, dB (default 55).
    pub snr_ref_db: Option<f64>,
    /// Log-distance path-loss exponent (default 2.7, indoor-ish).
    pub path_loss_exp: Option<f64>,
    /// Carrier-sense threshold: a station defers when another transmitter
    /// is audible at or above this mean SNR, dB (default 0).
    pub sense_snr_db: Option<f64>,
    /// Capture threshold: a concurrent transmission corrupts a reception
    /// when the signal-to-interference ratio at the receiver falls below
    /// this, dB (default 6).
    pub capture_sir_db: Option<f64>,
    /// Doppler spread override, Hz. Default derives from the mobility
    /// speed (`v / 0.06 m`), floored at 2 Hz for static deployments.
    pub doppler_hz: Option<f64>,
    /// How stations move.
    pub mobility: MobilitySpec,
    /// RSSI-threshold roaming; when omitted stations keep their initial
    /// (strongest-RSSI) association forever.
    pub roaming: Option<RoamingSpec>,
}

/// Fully resolved spatial parameters (defaults applied, grid laid out).
#[derive(Debug, Clone)]
pub struct SpatialParams {
    /// AP positions, row-major over the grid.
    pub aps: Vec<Point>,
    /// Station area.
    pub bounds: Rect,
    /// Station count.
    pub n_stations: usize,
    /// Mean SNR at 1 m, dB.
    pub snr_ref_db: f64,
    /// Path-loss exponent.
    pub path_loss_exp: f64,
    /// Carrier-sense threshold, dB.
    pub sense_snr_db: f64,
    /// Capture threshold, dB.
    pub capture_sir_db: f64,
    /// Doppler spread of every link's fading process, Hz.
    pub doppler_hz: f64,
    /// Mobility model.
    pub mobility: MobilitySpec,
    /// Roaming configuration (hysteresis dB, check interval s, policy).
    pub roaming: Option<(f64, f64, HandoffPolicy)>,
}

impl SpatialSpec {
    /// Validates the spec and applies defaults.
    pub fn resolve(&self) -> Result<SpatialParams, SpatialError> {
        let fail = |m: String| Err(SpatialError(m));
        if self.ap_cols == 0 || self.ap_rows == 0 {
            return fail("spatial: ap_cols and ap_rows must be >= 1".into());
        }
        if !self.ap_spacing_m.is_finite() || self.ap_spacing_m <= 0.0 {
            return fail(format!(
                "spatial: ap_spacing_m must be positive, got {}",
                self.ap_spacing_m
            ));
        }
        if self.n_stations == 0 {
            return fail("spatial: n_stations must be >= 1".into());
        }
        let speed = self.mobility.speed_mps();
        if !matches!(self.mobility, MobilitySpec::Static) && (!speed.is_finite() || speed <= 0.0) {
            return fail(format!(
                "spatial: mobility speed must be positive, got {speed}"
            ));
        }
        if let MobilitySpec::RandomWaypoint { pause_s, .. } = self.mobility {
            if !pause_s.is_finite() || pause_s < 0.0 {
                return fail(format!("spatial: pause_s must be >= 0, got {pause_s}"));
            }
        }
        let roaming = match &self.roaming {
            None => None,
            Some(r) => {
                if !r.hysteresis_db.is_finite() || r.hysteresis_db < 0.0 {
                    return fail(format!(
                        "spatial: roaming.hysteresis_db must be >= 0, got {}",
                        r.hysteresis_db
                    ));
                }
                let interval = r.check_interval_s.unwrap_or(0.25);
                if !interval.is_finite() || interval <= 0.0 {
                    return fail(format!(
                        "spatial: roaming.check_interval_s must be positive, got {interval}"
                    ));
                }
                Some((r.hysteresis_db, interval, r.handoff))
            }
        };
        let doppler = self
            .doppler_hz
            .unwrap_or_else(|| (speed / WAVELENGTH_M).max(STATIC_DOPPLER_HZ));
        if !doppler.is_finite() || doppler < 0.0 {
            return fail(format!("spatial: doppler_hz must be >= 0, got {doppler}"));
        }
        Ok(SpatialParams {
            aps: ap_grid(self.ap_cols, self.ap_rows, self.ap_spacing_m),
            bounds: grid_bounds(self.ap_cols, self.ap_rows, self.ap_spacing_m),
            n_stations: self.n_stations,
            snr_ref_db: self.snr_ref_db.unwrap_or(55.0),
            path_loss_exp: self.path_loss_exp.unwrap_or(2.7),
            sense_snr_db: self.sense_snr_db.unwrap_or(0.0),
            capture_sir_db: self.capture_sir_db.unwrap_or(6.0),
            doppler_hz: doppler,
            mobility: self.mobility,
            roaming,
        })
    }
}

impl SpatialParams {
    /// Seed of station `s`'s mobility trajectory under run seed `seed`.
    pub fn station_seed(&self, seed: u64, s: usize) -> u64 {
        mix_seed(seed ^ 0x57A7_1054, s as u64)
    }

    /// Position of station `s` at time `t`.
    pub fn station_pos(&self, seed: u64, s: usize, t: f64) -> Point {
        self.mobility
            .position_at(&self.bounds, self.station_seed(seed, s), t)
    }

    /// Mean (path-loss only) SNR of a transmission from `from` heard at
    /// `to`, dB.
    pub fn snr_between(&self, from: Point, to: Point) -> f64 {
        mean_snr_db(self.snr_ref_db, self.path_loss_exp, from.dist(to))
    }

    /// Conservative two-sided inversion of the log-distance model for the
    /// threshold test `snr_between >= threshold_db`: returns `(lo, hi)`
    /// such that every link at distance `<= lo` certainly **passes** the
    /// test and every link at distance `>= hi` certainly **fails** it.
    ///
    /// `snr_between(d) >= T` iff `max(d, 1) <= 10^((snr_ref − T)/(10·n))`
    /// (the path-loss law is strictly monotone beyond the 1 m clamp), so
    /// the exact inversion is the power term when `T <= snr_ref` and
    /// *nothing* when `T > snr_ref` (even the clamped 1 m link is too
    /// quiet — returns `(-1, 0)`: no distance passes, every distance
    /// fails). Both radii carry a relative epsilon many orders of
    /// magnitude above `powf`/`log10`/`sqrt` rounding: the threshold
    /// margin a 1e−9 relative distance pad buys (~1e−8·n dB) dwarfs the
    /// few-ulp error of evaluating the path-loss expression, so the
    /// certain verdicts can never contradict the exact check. Inside the
    /// vanishingly thin `(lo, hi)` band callers must still run the exact
    /// check — which is what keeps the fast path byte-identical to the
    /// full scan (the unregenerated goldens pin it).
    pub fn range_band(&self, threshold_db: f64) -> (f64, f64) {
        if threshold_db > self.snr_ref_db {
            return (-1.0, 0.0);
        }
        let r = 10f64.powf((self.snr_ref_db - threshold_db) / (10.0 * self.path_loss_exp));
        let r = r.max(1.0);
        (r * (1.0 - 1e-9) - 1e-9, r * (1.0 + 1e-9) + 1e-9)
    }

    /// The conservative *outer* radius of [`SpatialParams::range_band`]:
    /// beyond it, a link provably fails the threshold test.
    pub fn range_for_threshold(&self, threshold_db: f64) -> f64 {
        self.range_band(threshold_db).1
    }

    /// The AP with the strongest mean RSSI at `pos`, and that RSSI in dB.
    pub fn best_ap(&self, pos: Point) -> (usize, f64) {
        let mut best = 0;
        let mut best_rssi = f64::NEG_INFINITY;
        for (a, &ap) in self.aps.iter().enumerate() {
            let rssi = self.snr_between(pos, ap);
            if rssi > best_rssi {
                best = a;
                best_rssi = rssi;
            }
        }
        (best, best_rssi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SpatialSpec {
        SpatialSpec {
            ap_cols: 3,
            ap_rows: 1,
            ap_spacing_m: 30.0,
            n_stations: 10,
            snr_ref_db: None,
            path_loss_exp: None,
            sense_snr_db: None,
            capture_sir_db: None,
            doppler_hz: None,
            mobility: MobilitySpec::Static,
            roaming: None,
        }
    }

    #[test]
    fn resolve_applies_defaults() {
        let p = spec().resolve().unwrap();
        assert_eq!(p.aps.len(), 3);
        assert_eq!(p.snr_ref_db, 55.0);
        assert_eq!(p.doppler_hz, STATIC_DOPPLER_HZ);
        assert!(p.roaming.is_none());
    }

    #[test]
    fn doppler_derives_from_speed() {
        let mut s = spec();
        s.mobility = MobilitySpec::Linear {
            speed_mps: 15.0,
            heading_deg: 0.0,
        };
        let p = s.resolve().unwrap();
        assert!((p.doppler_hz - 250.0).abs() < 1e-9);
        s.doppler_hz = Some(40.0);
        assert_eq!(s.resolve().unwrap().doppler_hz, 40.0);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut s = spec();
        s.ap_cols = 0;
        assert!(s.resolve().is_err());

        let mut s = spec();
        s.ap_spacing_m = -1.0;
        assert!(s.resolve().is_err());

        let mut s = spec();
        s.n_stations = 0;
        assert!(s.resolve().is_err());

        let mut s = spec();
        s.mobility = MobilitySpec::RandomWaypoint {
            speed_mps: 0.0,
            pause_s: 1.0,
        };
        assert!(s.resolve().is_err());

        let mut s = spec();
        s.roaming = Some(RoamingSpec {
            hysteresis_db: -3.0,
            check_interval_s: None,
            handoff: HandoffPolicy::Preserve,
        });
        assert!(s.resolve().is_err());
    }

    #[test]
    fn best_ap_is_the_nearest() {
        let p = spec().resolve().unwrap();
        let near_middle = Point { x: 31.0, y: 0.5 };
        assert_eq!(p.best_ap(near_middle).0, 1);
        let near_last = Point { x: 59.0, y: -1.0 };
        assert_eq!(p.best_ap(near_last).0, 2);
    }

    #[test]
    fn range_band_brackets_the_exact_threshold_test() {
        let p = spec().resolve().unwrap();
        for threshold in [-5.0, 0.0, 7.5, 13.0, 30.0, 54.9] {
            let (lo, hi) = p.range_band(threshold);
            assert!(lo < hi);
            // Certainly-inside distances pass the exact check, certainly-
            // outside distances fail it, across a fine sweep.
            let origin = Point { x: 0.0, y: 0.0 };
            for k in 0..2000 {
                let d = 0.5 + k as f64 * 0.1;
                let to = Point { x: d, y: 0.0 };
                let passes = p.snr_between(origin, to) >= threshold;
                if d <= lo {
                    assert!(passes, "d={d} <= lo={lo} must pass at T={threshold}");
                }
                if d >= hi {
                    assert!(!passes, "d={d} >= hi={hi} must fail at T={threshold}");
                }
            }
            assert_eq!(p.range_for_threshold(threshold), hi);
        }
    }

    #[test]
    fn range_band_above_reference_admits_nothing() {
        let p = spec().resolve().unwrap();
        let (lo, hi) = p.range_band(p.snr_ref_db + 1.0);
        assert!(lo < 0.0, "no distance certainly passes");
        assert_eq!(hi, 0.0, "every distance certainly fails");
        // And the exact check agrees even at the 1 m clamp.
        let a = Point { x: 0.0, y: 0.0 };
        assert!(p.snr_between(a, a) < p.snr_ref_db + 1.0);
    }

    #[test]
    fn roaming_defaults() {
        let mut s = spec();
        s.roaming = Some(RoamingSpec {
            hysteresis_db: 3.0,
            check_interval_s: None,
            handoff: HandoffPolicy::Reset,
        });
        let p = s.resolve().unwrap();
        let (h, i, pol) = p.roaming.unwrap();
        assert_eq!(h, 3.0);
        assert_eq!(i, 0.25);
        assert_eq!(pol, HandoffPolicy::Reset);
    }
}
