//! Shard-invariance regression at city-rung shape: a floor large enough
//! that carrier sense runs the *grid-bucket* plan (the 3x3 suites all
//! take the end-sorted plan), with the compressed kickoff stagger and
//! the default roam interval of the netscale city rungs.
//!
//! Pins the exact-horizon routing bug found on the 10k rung: the 0.25 s
//! roam waves put a near event every 25 µs, so `horizon = next + 1e-4`
//! lands exactly on event times often enough that routing a
//! channel-access arrival at `at == horizon` into the *next* window let
//! a same-time near event with a larger seq dispatch first, diverging
//! the trajectory (first hit around t = 1.8 s in this configuration).

use softrate_net::mobility::MobilitySpec;
use softrate_net::sim::{SpatialConfig, SpatialSim};
use softrate_net::spatial::{HandoffPolicy, RoamingSpec, SpatialSpec};
use softrate_sim::config::AdapterKind;

fn city_spec(stations: usize, cols: usize, rows: usize) -> SpatialSpec {
    SpatialSpec {
        ap_cols: cols,
        ap_rows: rows,
        ap_spacing_m: 25.0,
        n_stations: stations,
        snr_ref_db: None,
        path_loss_exp: None,
        sense_snr_db: Some(13.0),
        capture_sir_db: None,
        doppler_hz: None,
        mobility: MobilitySpec::RandomWaypoint {
            speed_mps: 1.5,
            pause_s: 2.0,
        },
        roaming: Some(RoamingSpec {
            hysteresis_db: 3.0,
            check_interval_s: None,
            handoff: HandoffPolicy::Preserve,
        }),
    }
}

#[test]
fn grid_plan_city_rung_is_shard_invariant() {
    let run = |shards: usize| {
        let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, city_spec(10000, 8, 8));
        cfg.duration = 2.0;
        cfg.kickoff_stagger_s = 4e-5;
        cfg.shards = shards;
        SpatialSim::new(cfg).expect("valid").run()
    };
    let seq = run(1);
    for shards in [2, 4] {
        let par = run(shards);
        assert_eq!(
            seq.events_processed, par.events_processed,
            "{shards} shards: event count diverged"
        );
        assert_eq!(seq.frames_sent, par.frames_sent, "{shards} shards");
        assert_eq!(
            seq.frames_delivered, par.frames_delivered,
            "{shards} shards"
        );
        assert_eq!(seq.collisions, par.collisions, "{shards} shards");
        assert_eq!(seq.handoff_log, par.handoff_log, "{shards} shards");
        assert_eq!(
            seq.per_flow_goodput_bps, par.per_flow_goodput_bps,
            "{shards} shards"
        );
    }
}
