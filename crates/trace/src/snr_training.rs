//! Training SNR threshold tables from trace data (paper §6.1: "The SNR-BER
//! relationships for both protocols are computed from the traces used for
//! evaluation").
//!
//! A *trained* table is built from the same environment the protocol later
//! runs in; an *untrained* one comes from a different environment. The
//! paper's §6.3 result — up to 4x throughput loss for an untrained
//! SNR protocol in fast fading — is reproduced by training on slow-fading
//! (walking) data and deploying at vehicular Doppler.

use softrate_adapt::snr::SnrTable;

use crate::recipes::N_RATES;
use crate::schema::{BerSample, LinkTrace};

/// Minimum delivery probability for an SNR bin to count as "usable" for a
/// rate.
const TARGET_DELIVERY: f64 = 0.9;

/// SNR bin width in dB.
const BIN_DB: f64 = 1.0;

/// One (snr, delivered) observation for a rate.
#[derive(Debug, Clone, Copy)]
pub struct SnrObservation {
    /// Rate index.
    pub rate_idx: usize,
    /// Preamble SNR estimate in dB.
    pub snr_db: f64,
    /// Whether the frame was delivered intact.
    pub delivered: bool,
}

/// Extracts observations from BER samples.
pub fn observations_from_samples(samples: &[BerSample]) -> Vec<SnrObservation> {
    samples
        .iter()
        .filter_map(|s| {
            s.snr_est_db
                .filter(|v| v.is_finite())
                .map(|snr_db| SnrObservation {
                    rate_idx: s.rate_idx,
                    snr_db,
                    delivered: s.delivered,
                })
        })
        .collect()
}

/// Extracts observations from a link trace.
pub fn observations_from_trace(trace: &LinkTrace) -> Vec<SnrObservation> {
    let mut out = Vec::new();
    for (r, series) in trace.series.iter().enumerate() {
        for e in series {
            if let Some(snr_db) = e.snr_est_db.filter(|v| v.is_finite()) {
                out.push(SnrObservation {
                    rate_idx: r,
                    snr_db,
                    delivered: e.delivered,
                });
            }
        }
    }
    out
}

/// Trains a per-rate minimum-SNR table.
///
/// For each rate, observations are bucketed into 1 dB bins; the threshold
/// is the lowest bin from which *every* higher populated bin delivers at
/// least [`TARGET_DELIVERY`] of its frames. Cross-rate monotonicity is then
/// enforced (a faster rate can never have a lower threshold).
pub fn train_snr_table(observations: &[SnrObservation]) -> SnrTable {
    let mut thresholds = vec![f64::NAN; N_RATES];

    #[allow(clippy::needless_range_loop)] // `rate` filters observations and indexes the table
    for rate in 0..N_RATES {
        let mut bins: std::collections::BTreeMap<i64, (u32, u32)> = Default::default();
        for o in observations.iter().filter(|o| o.rate_idx == rate) {
            let bin = (o.snr_db / BIN_DB).floor() as i64;
            let e = bins.entry(bin).or_insert((0, 0));
            e.0 += 1;
            if o.delivered {
                e.1 += 1;
            }
        }
        // Walk bins from the top down, tracking the lowest bin where this
        // and all higher bins are good.
        let mut best: Option<i64> = None;
        for (&bin, &(total, ok)) in bins.iter().rev() {
            if total >= 3 && (ok as f64) / (total as f64) >= TARGET_DELIVERY {
                best = Some(bin);
            } else if total >= 3 {
                break; // a bad populated bin interrupts the run from the top
            }
        }
        thresholds[rate] = match best {
            Some(bin) => (bin as f64 + 1.0) * BIN_DB, // conservative: bin's upper edge
            None => f64::INFINITY,                    // rate never worked in training
        };
    }

    // A rate that never worked inherits "just above the best observed SNR"
    // so it is effectively disabled; replace infinities with a high finite
    // value above the previous threshold.
    let max_seen = observations.iter().map(|o| o.snr_db).fold(0.0f64, f64::max);
    for t in thresholds.iter_mut() {
        if !t.is_finite() {
            *t = max_seen + 10.0;
        }
    }
    // Enforce monotonicity.
    for i in 1..N_RATES {
        if thresholds[i] < thresholds[i - 1] {
            thresholds[i] = thresholds[i - 1];
        }
    }
    SnrTable::new(thresholds)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthesizes observations where rate `r` needs SNR >= 3r + 4 dB.
    fn synthetic_observations() -> Vec<SnrObservation> {
        let mut out = Vec::new();
        #[allow(clippy::needless_range_loop)] // `rate` filters observations and indexes the table
        for rate in 0..N_RATES {
            let need = 4.0 + 3.0 * rate as f64;
            for k in 0..400 {
                let snr = (k % 30) as f64;
                out.push(SnrObservation {
                    rate_idx: rate,
                    snr_db: snr,
                    delivered: snr >= need,
                });
            }
        }
        out
    }

    #[test]
    fn trained_table_recovers_synthetic_thresholds() {
        let table = train_snr_table(&synthetic_observations());
        #[allow(clippy::needless_range_loop)] // `rate` filters observations and indexes the table
        for rate in 0..N_RATES {
            let need = 4.0 + 3.0 * rate as f64;
            let got = table.min_snr_db[rate];
            assert!(
                (got - need).abs() <= 1.5,
                "rate {rate}: trained {got} dB vs true {need} dB"
            );
        }
    }

    #[test]
    fn table_is_monotone() {
        let table = train_snr_table(&synthetic_observations());
        for w in table.min_snr_db.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn never_working_rate_is_disabled() {
        // Rate 5 never delivers.
        let mut obs = synthetic_observations();
        for o in obs.iter_mut() {
            if o.rate_idx == 5 {
                o.delivered = false;
            }
        }
        let table = train_snr_table(&obs);
        let max_seen = 29.0;
        assert!(
            table.min_snr_db[5] > max_seen,
            "unusable rate must sit above observed SNRs"
        );
    }

    #[test]
    fn noisy_bins_do_not_create_holes() {
        // A single lucky delivery at low SNR must not pull the threshold
        // down (bins need >= 3 samples).
        let mut obs = synthetic_observations();
        obs.push(SnrObservation {
            rate_idx: 5,
            snr_db: 1.0,
            delivered: true,
        });
        let table = train_snr_table(&obs);
        assert!(table.min_snr_db[5] > 10.0);
    }
}
