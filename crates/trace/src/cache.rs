//! Load-or-generate caching of traces on disk.
//!
//! Trace generation runs the full PHY per probe and takes seconds-to-
//! minutes per trace; experiments cache traces as JSON under `results/` so
//! re-running a figure harness is instant. Set `SOFTRATE_REGEN=1` to force
//! regeneration.

use std::fs;
use std::path::Path;

use crate::schema::LinkTrace;

/// Loads `path` if it exists and parses, otherwise generates with `gen`,
/// stores, and returns. Respects the `SOFTRATE_REGEN` environment variable.
pub fn load_or_generate<P: AsRef<Path>>(path: P, gen: impl FnOnce() -> LinkTrace) -> LinkTrace {
    let path = path.as_ref();
    let force = std::env::var("SOFTRATE_REGEN")
        .map(|v| v == "1")
        .unwrap_or(false);
    if !force {
        if let Ok(text) = fs::read_to_string(path) {
            if let Ok(trace) = LinkTrace::from_json(&text) {
                return trace;
            }
            // Unparseable cache: fall through and regenerate.
        }
    }
    let trace = gen();
    if let Some(parent) = path.parent() {
        let _ = fs::create_dir_all(parent);
    }
    // Write-then-rename so concurrent readers (parallel scenario runs
    // sharing a cache entry) never observe a truncated file; a torn cache
    // would silently trigger regeneration.
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let stored = fs::write(&tmp, trace.to_json()).and_then(|()| fs::rename(&tmp, path));
    if let Err(e) = stored {
        let _ = fs::remove_file(&tmp);
        eprintln!("warning: could not cache trace to {}: {e}", path.display());
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TraceEntry;

    fn tiny_trace(marker: f64) -> LinkTrace {
        LinkTrace {
            name: "tiny".into(),
            mode_name: "simulation".into(),
            interval: 0.005,
            duration: 0.005,
            series: vec![vec![TraceEntry::silent(0.0, 0, marker)]],
            seed: 0,
        }
    }

    #[test]
    fn generates_then_loads() {
        let dir = std::env::temp_dir().join(format!("softrate-cache-test-{}", std::process::id()));
        let path = dir.join("t.json");
        let _ = fs::remove_file(&path);

        let mut calls = 0;
        let t1 = load_or_generate(&path, || {
            calls += 1;
            tiny_trace(1.0)
        });
        assert_eq!(calls, 1);
        assert_eq!(t1.series[0][0].true_snr_db, 1.0);

        // Second call must hit the cache, not the generator.
        let t2 = load_or_generate(&path, || {
            calls += 1;
            tiny_trace(2.0)
        });
        assert_eq!(calls, 1, "generator must not run again");
        assert_eq!(t2.series[0][0].true_snr_db, 1.0);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_regenerates() {
        let dir = std::env::temp_dir().join(format!("softrate-cache-test2-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        fs::write(&path, "{not json").unwrap();
        let t = load_or_generate(&path, || tiny_trace(3.0));
        assert_eq!(t.series[0][0].true_snr_db, 3.0);
        let _ = fs::remove_dir_all(&dir);
    }
}
