//! The paper's Table 4 experiment recipes, as data.
//!
//! Each recipe captures the workload parameters of one row of Table 4.
//! Defaults are paper-scale; `smoke()` variants are scaled down for tests
//! and quick runs. Substitutions from the paper's testbed to our simulated
//! channel are documented in DESIGN.md §1.

use serde::{Deserialize, Serialize};

/// Number of evaluated rates (the paper's prototype rates, 6..36 Mbps).
pub const N_RATES: usize = softrate_phy::rates::NUM_PAPER_RATES;

/// Probe payload used in trace collection (small frames so a full rate
/// cycle fits in the 5 ms channel-coherence budget, §6.1).
pub const PROBE_PAYLOAD: usize = 100;

/// Probing interval: all rates are cycled once per interval (§6.1: "running
/// through all the bit rates once in under 5 milliseconds").
pub const PROBE_INTERVAL: f64 = 0.005;

/// "Static" recipe (Table 4 row 1): static sender-receiver pairs, power
/// sweep, 960-byte frames — the BER-estimation study of §5.2 / Figure 7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticRecipe {
    /// Number of sender-receiver pairs (seeds).
    pub n_pairs: usize,
    /// Transmit powers swept, in dB.
    pub tx_powers_db: Vec<f64>,
    /// Frames per (pair, power, rate) point.
    pub frames_per_point: usize,
    /// Probe payload bytes.
    pub payload_len: usize,
    /// Noise floor in dB.
    pub noise_db: f64,
}

impl Default for StaticRecipe {
    fn default() -> Self {
        StaticRecipe {
            n_pairs: 6,
            // 20 powers spanning SNR ~2..26 dB against the -26 dB floor.
            tx_powers_db: (0..20).map(|k| -24.0 + 1.25 * k as f64).collect(),
            frames_per_point: 100,
            payload_len: 960,
            noise_db: -26.0,
        }
    }
}

impl StaticRecipe {
    /// Scaled-down variant for tests / quick runs.
    pub fn smoke() -> Self {
        StaticRecipe {
            n_pairs: 2,
            tx_powers_db: (0..8).map(|k| -24.0 + 3.2 * k as f64).collect(),
            frames_per_point: 10,
            payload_len: 240,
            noise_db: -26.0,
        }
    }
}

/// "Walking" recipe (Table 4 row 2): one sender moving away from the
/// receiver at walking speed; 10 runs of 10 seconds (§5.2, §6.2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalkingRecipe {
    /// Trace duration per run, seconds.
    pub duration: f64,
    /// Probing interval, seconds.
    pub interval: f64,
    /// Probe payload bytes.
    pub payload_len: usize,
    /// Noise floor dB.
    pub noise_db: f64,
    /// Start-of-run attenuation dB.
    pub atten_start_db: f64,
    /// End-of-run attenuation dB (more negative = farther away).
    pub atten_end_db: f64,
    /// Doppler spread at walking speed, Hz.
    pub doppler_hz: f64,
}

impl Default for WalkingRecipe {
    fn default() -> Self {
        WalkingRecipe {
            duration: 10.0,
            interval: PROBE_INTERVAL,
            payload_len: PROBE_PAYLOAD,
            noise_db: -26.0,
            atten_start_db: 0.0,
            atten_end_db: -20.0,
            doppler_hz: 40.0,
        }
    }
}

impl WalkingRecipe {
    /// Scaled-down variant.
    pub fn smoke() -> Self {
        WalkingRecipe {
            duration: 1.0,
            ..Default::default()
        }
    }
}

/// "Simulation" recipe (Table 4 row 3): fading-channel simulator with the
/// Doppler spread swept 40 Hz .. 4 kHz (§5.2, §6.3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DopplerRecipe {
    /// Doppler spread, Hz.
    pub doppler_hz: f64,
    /// Trace duration, seconds.
    pub duration: f64,
    /// Probing interval, seconds.
    pub interval: f64,
    /// Probe payload bytes.
    pub payload_len: usize,
    /// Mean SNR in dB (power fixed; the fading does the sweeping).
    pub mean_snr_db: f64,
}

impl Default for DopplerRecipe {
    fn default() -> Self {
        DopplerRecipe {
            doppler_hz: 400.0,
            duration: 10.0,
            interval: PROBE_INTERVAL,
            payload_len: PROBE_PAYLOAD,
            mean_snr_db: 16.0,
        }
    }
}

impl DopplerRecipe {
    /// The paper's Doppler sweep endpoints: 40 Hz .. 4 kHz, i.e. coherence
    /// times 10 ms .. 100 us.
    pub fn paper_sweep() -> Vec<f64> {
        vec![40.0, 100.0, 400.0, 1000.0, 2000.0, 4000.0]
    }

    /// Coherence time implied by this recipe's Doppler (0.4 / f_d).
    pub fn coherence_time(&self) -> f64 {
        0.4 / self.doppler_hz
    }

    /// Scaled-down variant.
    pub fn smoke(doppler_hz: f64) -> Self {
        DopplerRecipe {
            doppler_hz,
            duration: 1.0,
            ..Default::default()
        }
    }
}

/// "Static (interference)" recipe (Table 4 row 4): sender + interferer with
/// ~one-packet-time jitter, interferer power swept (§5.3, Figures 10/11).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterferenceRecipe {
    /// Interferer power relative to the sender, dB (paper x-axis:
    /// -15..0 dB).
    pub rel_powers_db: Vec<f64>,
    /// Frames per (power, rate) point.
    pub frames_per_point: usize,
    /// Sender payload bytes.
    pub payload_len: usize,
    /// Interferer payload bytes (equal sizes in the paper's accuracy
    /// study).
    pub interferer_payload_len: usize,
    /// Sender SNR in dB (high: the link is clean absent interference).
    pub snr_db: f64,
}

impl Default for InterferenceRecipe {
    fn default() -> Self {
        InterferenceRecipe {
            rel_powers_db: vec![-15.0, -8.0, -4.0, -2.0, 0.0],
            frames_per_point: 100,
            payload_len: 700,
            interferer_payload_len: 700,
            snr_db: 25.0,
        }
    }
}

impl InterferenceRecipe {
    /// Scaled-down variant. Payloads stay long enough (500 B, ~15+ OFDM
    /// symbols) that an overlap spans several symbols — the geometry the
    /// detector's min-region rule expects from real collisions.
    pub fn smoke() -> Self {
        InterferenceRecipe {
            rel_powers_db: vec![-8.0, 0.0],
            frames_per_point: 15,
            payload_len: 500,
            interferer_payload_len: 500,
            snr_db: 25.0,
        }
    }
}

/// "Static (short range)" recipe (Table 4 row 5): single static sender,
/// 10 s runs — the substrate for the interference-dominated evaluation of
/// §6.4 (a static channel isolates the interference-detection benefit).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticShortRecipe {
    /// Trace duration, seconds.
    pub duration: f64,
    /// Probing interval, seconds.
    pub interval: f64,
    /// Probe payload bytes.
    pub payload_len: usize,
    /// Link SNR in dB.
    pub snr_db: f64,
}

impl Default for StaticShortRecipe {
    fn default() -> Self {
        StaticShortRecipe {
            duration: 10.0,
            interval: PROBE_INTERVAL,
            payload_len: PROBE_PAYLOAD,
            snr_db: 17.0,
        }
    }
}

impl StaticShortRecipe {
    /// Scaled-down variant.
    pub fn smoke() -> Self {
        StaticShortRecipe {
            duration: 1.0,
            ..Default::default()
        }
    }
}

/// Synthetic alternating-channel recipe for the convergence study
/// (Figure 15): the channel flips between a "good" state (best rate QAM16
/// 3/4) and a "bad" state (best rate QAM16 1/2) every second.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlternatingRecipe {
    /// Seconds per state (1.0 in the paper).
    pub half_period: f64,
    /// Total duration, seconds.
    pub duration: f64,
    /// Probing interval, seconds.
    pub interval: f64,
    /// SNR during the good state, dB.
    pub snr_good_db: f64,
    /// SNR during the bad state, dB.
    pub snr_bad_db: f64,
    /// Probe payload bytes.
    pub payload_len: usize,
}

impl Default for AlternatingRecipe {
    fn default() -> Self {
        AlternatingRecipe {
            half_period: 1.0,
            duration: 10.0,
            interval: PROBE_INTERVAL,
            // Calibrated to the PHY (see crates/trace/src/bin/calibrate.rs):
            // QAM16 3/4 needs ~14 dB, QAM16 1/2 ~12.5 dB.
            snr_good_db: 16.0,
            snr_bad_db: 12.5,
            payload_len: PROBE_PAYLOAD,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table4_scale() {
        let s = StaticRecipe::default();
        assert_eq!(s.n_pairs, 6);
        assert_eq!(s.tx_powers_db.len(), 20);
        assert_eq!(s.frames_per_point, 100);
        assert_eq!(s.payload_len, 960);

        let w = WalkingRecipe::default();
        assert_eq!(w.duration, 10.0);
        // 10 s / 5 ms = 2000 probes per rate per run; x 10 runs x 2 (both
        // trace endpoints) covers the paper's 4000 packets per rate.
        assert!((w.duration / w.interval - 2000.0).abs() < 1e-9);

        let i = InterferenceRecipe::default();
        assert_eq!(i.rel_powers_db.len(), 5);
        assert_eq!(i.frames_per_point, 100);
    }

    #[test]
    fn doppler_sweep_covers_coherence_decade() {
        let sweep = DopplerRecipe::paper_sweep();
        assert_eq!(*sweep.first().unwrap(), 40.0);
        assert_eq!(*sweep.last().unwrap(), 4000.0);
        let fast = DopplerRecipe {
            doppler_hz: 4000.0,
            ..Default::default()
        };
        assert!(
            (fast.coherence_time() - 1e-4).abs() < 1e-12,
            "4 kHz ~ 100 us coherence"
        );
    }

    #[test]
    fn smoke_variants_are_smaller() {
        assert!(StaticRecipe::smoke().frames_per_point < StaticRecipe::default().frames_per_point);
        assert!(WalkingRecipe::smoke().duration < WalkingRecipe::default().duration);
        assert!(
            InterferenceRecipe::smoke().frames_per_point
                < InterferenceRecipe::default().frames_per_point
        );
    }

    #[test]
    fn recipes_serialize() {
        let r = WalkingRecipe::default();
        let s = serde_json::to_string(&r).unwrap();
        let back: WalkingRecipe = serde_json::from_str(&s).unwrap();
        assert_eq!(back.duration, r.duration);
    }
}
