//! Calibration sweep: delivery probability per (SNR, rate) on a static
//! channel, plus the implied success probability of 1400-byte data frames.
//! Used to pin the recipe operating points (alternating good/bad SNR,
//! static-short SNR) to the PHY's actual thresholds.

use softrate_channel::link::{Link, LinkConfig};
use softrate_phy::ofdm::SHORT_RANGE;
use softrate_phy::rates::PAPER_RATES;

fn main() {
    let frames = 40;
    let payload = 100;
    println!("static short-range calibration: {frames} probes per point, {payload} B payload");
    println!(
        "{:>6} | {}",
        "SNR dB",
        PAPER_RATES
            .iter()
            .map(|r| format!("{:>16}", r.label()))
            .collect::<String>()
    );
    for snr_x2 in 4..=52 {
        let snr = snr_x2 as f64 / 2.0;
        let mut row = format!("{snr:>6.1} |");
        for &rate in PAPER_RATES {
            let mut cfg = LinkConfig::new(SHORT_RANGE);
            cfg.noise_power_db = -snr;
            cfg.seed = 1234 ^ (snr_x2 as u64) << 8;
            let mut link = Link::new(cfg);
            let mut delivered = 0usize;
            let mut ber_acc = 0.0;
            let mut ber_n = 0usize;
            for k in 0..frames {
                let (_, obs) = link.probe(rate, payload, k as f64 * 0.01, &[], false);
                if obs.delivered() {
                    delivered += 1;
                }
                if let Some(b) = obs.true_ber {
                    ber_acc += b;
                    ber_n += 1;
                }
            }
            let mean_ber = if ber_n > 0 {
                ber_acc / ber_n as f64
            } else {
                f64::NAN
            };
            let p1400 = (1.0 - mean_ber).powi(1404 * 8).max(0.0);
            row.push_str(&format!(
                " {:>4.0}%/p14={:<4.2} ",
                100.0 * delivered as f64 / frames as f64,
                if p1400.is_nan() { 0.0 } else { p1400 }
            ));
        }
        println!("{row}");
    }
}
