//! # softrate-trace — channel traces and the Table 4 workloads
//!
//! The paper evaluates SoftRate with trace-driven simulation: software-radio
//! probe traces specify the channel's behaviour per (time, rate), and ns-3
//! replays them (§4.1, §6.1). This crate reproduces that methodology over
//! the `softrate-phy`/`softrate-channel` substrate:
//!
//! * [`schema`] — [`schema::TraceEntry`], [`schema::LinkTrace`] (per-rate
//!   time series on one fading realization), frame-fate lookup, the
//!   omniscient oracle, and flat [`schema::BerSample`] records.
//! * [`recipes`] — Table 4 as data: static, walking, Doppler-sweep,
//!   interference and static-short-range recipes, with paper-scale defaults
//!   and `smoke()` variants.
//! * [`generate`] — the probe loops that produce traces and samples, plus
//!   the interference-detection and false-positive studies of §5.3.
//! * [`snr_training`] — building trained/untrained SNR tables from traces
//!   (§6.1).
//! * [`cache`] — JSON load-or-generate caching under `results/`.
//! * [`par`] — a tiny thread-pool `par_map` for batch generation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod generate;
pub mod par;
pub mod recipes;
pub mod schema;
pub mod snr_training;

/// Convenient glob-import of the most common items.
pub mod prelude {
    pub use crate::cache::load_or_generate;
    pub use crate::generate::{
        alternating_trace, doppler_trace, interference_detection_samples, mobile_ber_samples,
        quiet_detection_run, static_ber_samples, static_short_trace, walking_trace, walking_traces,
        DetectionOutcome, DetectionSample,
    };
    pub use crate::par::par_map;
    pub use crate::recipes::{
        AlternatingRecipe, DopplerRecipe, InterferenceRecipe, StaticRecipe, StaticShortRecipe,
        WalkingRecipe, N_RATES, PROBE_INTERVAL, PROBE_PAYLOAD,
    };
    pub use crate::schema::{BerSample, FrameFate, LinkTrace, TraceEntry};
    pub use crate::snr_training::{
        observations_from_samples, observations_from_trace, train_snr_table, SnrObservation,
    };
}
