//! Trace schema: what one channel probe records and how a link's time
//! series answers the simulator's questions.
//!
//! Following the paper's methodology (§6.1), a trace "completely specifies
//! the channel characteristics of the link (like, whether a frame sent is
//! correctly received, and what its SNR and SoftPHY hints would be) for
//! each point in time", with one series per bit rate, all sampled from the
//! *same* fading realization.

use serde::{Deserialize, Serialize};

/// One probe observation at one `(time, rate)` point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Probe transmit time, seconds from trace start.
    pub t: f64,
    /// Rate index (into the trace's rate table).
    pub rate_idx: usize,
    /// Preamble detected.
    pub detected: bool,
    /// Link-layer header decoded (its CRC-16 verified) — feedback possible.
    pub header_ok: bool,
    /// Probe payload CRC-32 verified.
    pub delivered: bool,
    /// Ground-truth BER of the probe payload (None when never decoded).
    pub true_ber: Option<f64>,
    /// SoftPHY-estimated BER over the probe (what the receiver would feed
    /// back). `None` when the header was not decodable.
    pub softphy_ber: Option<f64>,
    /// Preamble SNR estimate in dB (`None` when not detected).
    pub snr_est_db: Option<f64>,
    /// Ground-truth mean SNR over the probe frame in dB.
    pub true_snr_db: f64,
    /// Information bits in the probe payload (with CRC).
    pub probe_bits: usize,
}

impl TraceEntry {
    /// An entry representing complete silence (nothing detected).
    pub fn silent(t: f64, rate_idx: usize, true_snr_db: f64) -> Self {
        TraceEntry {
            t,
            rate_idx,
            detected: false,
            header_ok: false,
            delivered: false,
            true_ber: None,
            softphy_ber: None,
            snr_est_db: None,
            true_snr_db,
            probe_bits: 0,
        }
    }

    /// Success probability of an `frame_bits`-bit frame under this entry's
    /// channel (independent-bit-error model over the measured true BER).
    pub fn frame_success_prob(&self, frame_bits: usize) -> f64 {
        match self.true_ber {
            None => 0.0,
            Some(b) => (1.0 - b).powi(frame_bits as i32).clamp(0.0, 1.0),
        }
    }
}

/// Deterministic pseudo-random uniform in `[0,1)` from a list of words —
/// the simulator's reproducible coin for frame fates.
pub fn hash_uniform(words: &[u64]) -> f64 {
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    for &w in words {
        x ^= w
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(x << 6)
            .wrapping_add(x >> 2);
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
    }
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// The simulated fate of a data frame looked up in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameFate {
    /// Preamble detected at the receiver.
    pub detected: bool,
    /// Header decodable (feedback frame possible).
    pub header_ok: bool,
    /// Payload delivered intact.
    pub delivered: bool,
    /// The SoftPHY BER the receiver would feed back (`None` if no
    /// feedback).
    pub ber_feedback: Option<f64>,
    /// The SNR estimate the receiver would feed back (`None` if no
    /// feedback).
    pub snr_feedback_db: Option<f64>,
}

/// A complete per-link trace: one [`TraceEntry`] series per bit rate, on a
/// common probing clock.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkTrace {
    /// Human-readable recipe name ("walking-3", "doppler-400Hz", ...).
    pub name: String,
    /// OFDM mode name the trace was collected in.
    pub mode_name: String,
    /// Probing interval in seconds (the paper cycles all rates in < 5 ms).
    pub interval: f64,
    /// Trace duration in seconds.
    pub duration: f64,
    /// `series[rate_idx][step]`.
    pub series: Vec<Vec<TraceEntry>>,
    /// Seed the trace was generated from (provenance).
    pub seed: u64,
}

impl LinkTrace {
    /// Number of time steps.
    pub fn n_steps(&self) -> usize {
        self.series.first().map_or(0, |s| s.len())
    }

    /// Number of rates.
    pub fn n_rates(&self) -> usize {
        self.series.len()
    }

    /// Step index for time `t` (clamped; the trace repeats beyond its end
    /// by wrapping, so long simulations can run on finite traces).
    pub fn step_for(&self, t: f64) -> usize {
        let n = self.n_steps();
        assert!(n > 0, "empty trace");
        let idx = (t / self.interval).floor() as i64;
        (idx.max(0) as usize) % n
    }

    /// The trace entry governing `(rate, t)`.
    pub fn entry(&self, rate_idx: usize, t: f64) -> &TraceEntry {
        &self.series[rate_idx][self.step_for(t)]
    }

    /// Simulates the fate of a `frame_bits`-bit data frame sent at `t` and
    /// `rate_idx`. `salt` distinguishes links/flows; `attempt` makes retry
    /// draws independent.
    pub fn frame_fate(
        &self,
        rate_idx: usize,
        t: f64,
        frame_bits: usize,
        salt: u64,
        attempt: u64,
    ) -> FrameFate {
        let step = self.step_for(t);
        let e = &self.series[rate_idx][step];
        if !e.detected {
            return FrameFate {
                detected: false,
                header_ok: false,
                delivered: false,
                ber_feedback: None,
                snr_feedback_db: None,
            };
        }
        let p = e.frame_success_prob(frame_bits);
        let u = hash_uniform(&[step as u64, rate_idx as u64, salt, attempt]);
        let delivered = e.header_ok && u < p;
        FrameFate {
            detected: true,
            header_ok: e.header_ok,
            delivered,
            ber_feedback: e.header_ok.then_some(e.softphy_ber).flatten(),
            snr_feedback_db: e.header_ok.then_some(e.snr_est_db).flatten(),
        }
    }

    /// The omniscient oracle (paper §6.1): the highest rate whose
    /// `frame_bits`-bit frame is (essentially) guaranteed to get through at
    /// time `t`; falls back to the most robust rate when none qualifies.
    pub fn best_rate_at(&self, t: f64, frame_bits: usize) -> usize {
        let step = self.step_for(t);
        let mut best = 0;
        for (r, series) in self.series.iter().enumerate() {
            let e = &series[step];
            if e.detected && e.header_ok && e.frame_success_prob(frame_bits) > 0.95 {
                best = r;
            }
        }
        best
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization cannot fail")
    }

    /// Deserializes from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// A flat sample for the BER-estimation studies (Figures 7, 8, 9): one
/// probe, its estimates, and its ground truth.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BerSample {
    /// Rate index.
    pub rate_idx: usize,
    /// Transmit power of the probe in dB.
    pub tx_power_db: f64,
    /// Doppler spread of the channel in Hz (0 = static).
    pub doppler_hz: f64,
    /// Preamble SNR estimate in dB (`None` when not detected).
    pub snr_est_db: Option<f64>,
    /// SoftPHY BER estimate over the frame (`None` without a decode).
    pub softphy_ber: Option<f64>,
    /// Ground-truth BER (None = not decoded).
    pub true_ber: Option<f64>,
    /// Bits in the probe (for aggregated-BER weighting).
    pub probe_bits: usize,
    /// Frame delivered intact.
    pub delivered: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(t: f64, rate: usize, ber: f64) -> TraceEntry {
        TraceEntry {
            t,
            rate_idx: rate,
            detected: true,
            header_ok: true,
            delivered: ber < 1e-5,
            true_ber: Some(ber),
            softphy_ber: Some(ber),
            snr_est_db: Some(15.0),
            true_snr_db: 15.0,
            probe_bits: 832,
        }
    }

    fn small_trace() -> LinkTrace {
        // 2 rates, 3 steps at 5 ms.
        let series = vec![
            vec![
                entry(0.0, 0, 1e-9),
                entry(0.005, 0, 1e-9),
                entry(0.010, 0, 1e-7),
            ],
            vec![
                entry(0.0, 1, 1e-8),
                entry(0.005, 1, 0.2),
                entry(0.010, 1, 1e-6),
            ],
        ];
        LinkTrace {
            name: "test".into(),
            mode_name: "simulation".into(),
            interval: 0.005,
            duration: 0.015,
            series,
            seed: 1,
        }
    }

    #[test]
    fn step_lookup_and_wrapping() {
        let tr = small_trace();
        assert_eq!(tr.step_for(0.0), 0);
        assert_eq!(tr.step_for(0.004), 0);
        assert_eq!(tr.step_for(0.005), 1);
        assert_eq!(tr.step_for(0.014), 2);
        assert_eq!(tr.step_for(0.015), 0, "wraps at the end");
        assert_eq!(tr.step_for(0.021), 1);
    }

    #[test]
    fn frame_success_prob_shapes() {
        let good = entry(0.0, 0, 1e-9);
        assert!(good.frame_success_prob(10_000) > 0.99);
        let bad = entry(0.0, 0, 1e-2);
        assert!(bad.frame_success_prob(10_000) < 1e-20);
        let silent = TraceEntry::silent(0.0, 0, -5.0);
        assert_eq!(silent.frame_success_prob(10_000), 0.0);
    }

    #[test]
    fn fate_is_deterministic() {
        let tr = small_trace();
        let a = tr.frame_fate(1, 0.005, 10_000, 7, 0);
        let b = tr.frame_fate(1, 0.005, 10_000, 7, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn fate_differs_across_attempts_sometimes() {
        // With p_succ around 0.5, indepedent draws must eventually differ.
        let mut e = entry(0.0, 0, 0.0);
        e.true_ber = Some(6.9e-5); // (1-b)^10000 ~ 0.5
        let tr = LinkTrace {
            name: "t".into(),
            mode_name: "simulation".into(),
            interval: 0.005,
            duration: 0.005,
            series: vec![vec![e]],
            seed: 0,
        };
        let fates: Vec<bool> = (0..64)
            .map(|a| tr.frame_fate(0, 0.0, 10_000, 1, a).delivered)
            .collect();
        assert!(fates.iter().any(|&d| d) && fates.iter().any(|&d| !d));
    }

    #[test]
    fn fate_of_undetected_is_silent() {
        let mut tr = small_trace();
        tr.series[0][0] = TraceEntry::silent(0.0, 0, -3.0);
        let f = tr.frame_fate(0, 0.0, 8000, 0, 0);
        assert!(!f.detected && !f.delivered && f.ber_feedback.is_none());
    }

    #[test]
    fn oracle_picks_highest_safe_rate() {
        let tr = small_trace();
        // step 0: both rates clean -> rate 1; step 1: rate 1 is ruined -> 0.
        assert_eq!(tr.best_rate_at(0.0, 10_000), 1);
        assert_eq!(tr.best_rate_at(0.005, 10_000), 0);
    }

    #[test]
    fn json_roundtrip() {
        let tr = small_trace();
        let s = tr.to_json();
        let back = LinkTrace::from_json(&s).unwrap();
        assert_eq!(back.n_steps(), 3);
        assert_eq!(back.n_rates(), 2);
        assert_eq!(back.series[1][1].true_ber, Some(0.2));
    }

    #[test]
    fn hash_uniform_distribution_sane() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| hash_uniform(&[i as u64, 42])).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        // Sensitivity: different salts give different streams.
        let a = hash_uniform(&[1, 2, 3]);
        let b = hash_uniform(&[1, 2, 4]);
        assert_ne!(a, b);
    }
}
