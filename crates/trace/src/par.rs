//! Minimal data-parallel map over OS threads.
//!
//! Trace generation is embarrassingly parallel across (run, power, rate)
//! combinations; this avoids pulling a full work-stealing runtime into the
//! workspace for a one-shot batch job (the coding guides' advice: CPU-bound
//! batch work belongs on plain threads, not an async runtime).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item, using up to `available_parallelism` threads.
/// Order of results matches the order of `items`. `f` must be `Sync` (it is
/// shared across threads) and the items/results must be `Send`.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    par_map_threads(threads, items, f)
}

/// [`par_map`] with an explicit worker count (≥ 1). Results are ordered by
/// input index regardless of the worker count, so output is reproducible
/// across machines and `--threads` settings — the scenario engine's
/// determinism guarantee relies on this.
pub fn par_map_threads<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().unwrap().take().expect("item taken twice");
                let out = f(item);
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("worker died before finishing")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = par_map((0..100).collect(), |x: i32| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as i32);
        }
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let reference: Vec<i64> = (0..200).map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 7, 64] {
            let out = par_map_threads(threads, (0..200).collect(), |x: i64| x * 3 + 1);
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(vec![41], |x: i32| x + 1), vec![42]);
    }

    #[test]
    fn heavy_closure_state_is_shared_safely() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let out = par_map((0..1000).collect(), |x: u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }
}
