//! Trace and sample generators: the paper's Table 4 experiments, run over
//! the software PHY + channel simulator instead of USRPs (DESIGN.md §1).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use serde::{Deserialize, Serialize};
use softrate_channel::interference::{interferer_frame, Interferer};
use softrate_channel::link::{Link, LinkConfig, LinkObservation};
use softrate_channel::model::{ChannelInstance, FadingSpec};
use softrate_channel::pathloss::Attenuation;
use softrate_core::collision::CollisionDetector;
use softrate_core::hints::FrameHints;
use softrate_phy::frame::TxFrame;
use softrate_phy::ofdm::{Mode, LONG_RANGE, SHORT_RANGE, SIMULATION};
use softrate_phy::rates::PAPER_RATES;

use crate::par::par_map;
use crate::recipes::{
    AlternatingRecipe, DopplerRecipe, InterferenceRecipe, StaticRecipe, StaticShortRecipe,
    WalkingRecipe, N_RATES,
};
use crate::schema::{BerSample, LinkTrace, TraceEntry};

/// Converts one probe observation into a trace entry.
fn probe_to_entry(t: f64, rate_idx: usize, tx: &TxFrame, obs: &LinkObservation) -> TraceEntry {
    let mut e = TraceEntry::silent(t, rate_idx, obs.true_frame_snr_db);
    e.detected = obs.preamble_detected;
    if let Some(rx) = &obs.rx {
        e.snr_est_db = Some(rx.snr_db);
        e.header_ok = rx.header.is_some();
        e.delivered = rx.crc_ok;
        e.true_ber = obs.true_ber;
        e.probe_bits = tx.info_bits.len();
        if e.header_ok && !rx.llrs.is_empty() {
            let hints = FrameHints::from_llrs(&rx.llrs, rx.info_bits_per_symbol.max(1));
            e.softphy_ber = Some(hints.frame_ber());
        }
    }
    e
}

/// Runs one probing time series over `link`, cycling all paper rates at
/// each step — the trace-collection loop of §6.1. Public so other trace
/// producers (e.g. the scenario engine's PHY-backed channels) can reuse it
/// on links they configure themselves.
pub fn run_probe_series(
    link: &mut Link,
    duration: f64,
    interval: f64,
    payload_len: usize,
) -> Vec<Vec<TraceEntry>> {
    let n_steps = (duration / interval).round() as usize;
    let mut series: Vec<Vec<TraceEntry>> =
        (0..N_RATES).map(|_| Vec::with_capacity(n_steps)).collect();
    for step in 0..n_steps {
        let t = step as f64 * interval;
        for (r, &rate) in PAPER_RATES.iter().enumerate() {
            let (tx, obs) = link.probe(rate, payload_len, t, &[], false);
            series[r].push(probe_to_entry(t, r, &tx, &obs));
        }
    }
    series
}

/// Generates one walking-mobility trace (Table 4 "Walking", run index
/// `run`): short-range mode, 40 Hz Jakes fading plus a large-scale
/// attenuation ramp as the sender walks away.
pub fn walking_trace(run: usize, recipe: &WalkingRecipe) -> LinkTrace {
    let seed = 0x5741_4C4B_0000 ^ run as u64; // "WALK"
    let mut cfg = LinkConfig::new(SHORT_RANGE);
    cfg.noise_power_db = recipe.noise_db;
    cfg.fading = FadingSpec::Flat {
        doppler_hz: recipe.doppler_hz,
    };
    cfg.attenuation = Attenuation::RampDb {
        t_start: 0.0,
        db_start: recipe.atten_start_db,
        t_end: recipe.duration,
        db_end: recipe.atten_end_db,
    };
    cfg.seed = seed;
    let mut link = Link::new(cfg);
    LinkTrace {
        name: format!("walking-{run}"),
        mode_name: SHORT_RANGE.name.to_string(),
        interval: recipe.interval,
        duration: recipe.duration,
        series: run_probe_series(
            &mut link,
            recipe.duration,
            recipe.interval,
            recipe.payload_len,
        ),
        seed,
    }
}

/// Generates all ten walking runs in parallel.
pub fn walking_traces(n_runs: usize, recipe: &WalkingRecipe) -> Vec<LinkTrace> {
    par_map((0..n_runs).collect(), |run| walking_trace(run, recipe))
}

/// Generates a fading-simulator trace at one Doppler spread (Table 4
/// "Simulation"): 20 MHz simulation mode, flat Rayleigh fading, constant
/// mean SNR.
pub fn doppler_trace(run: usize, recipe: &DopplerRecipe) -> LinkTrace {
    let seed = 0x444F_5050_0000 ^ ((recipe.doppler_hz as u64) << 8) ^ run as u64; // "DOPP"
    let mut cfg = LinkConfig::new(SIMULATION);
    cfg.noise_power_db = -recipe.mean_snr_db;
    cfg.fading = FadingSpec::Flat {
        doppler_hz: recipe.doppler_hz,
    };
    cfg.seed = seed;
    let mut link = Link::new(cfg);
    LinkTrace {
        name: format!("doppler-{}Hz-{run}", recipe.doppler_hz),
        mode_name: SIMULATION.name.to_string(),
        interval: recipe.interval,
        duration: recipe.duration,
        series: run_probe_series(
            &mut link,
            recipe.duration,
            recipe.interval,
            recipe.payload_len,
        ),
        seed,
    }
}

/// Generates a static short-range trace (Table 4 "Static (short range)"):
/// the §6.4 substrate.
pub fn static_short_trace(run: usize, recipe: &StaticShortRecipe) -> LinkTrace {
    let seed = 0x5354_4154_0000 ^ run as u64; // "STAT"
    let mut cfg = LinkConfig::new(SHORT_RANGE);
    cfg.noise_power_db = -recipe.snr_db;
    cfg.fading = FadingSpec::None;
    cfg.seed = seed;
    let mut link = Link::new(cfg);
    LinkTrace {
        name: format!("static-short-{run}"),
        mode_name: SHORT_RANGE.name.to_string(),
        interval: recipe.interval,
        duration: recipe.duration,
        series: run_probe_series(
            &mut link,
            recipe.duration,
            recipe.interval,
            recipe.payload_len,
        ),
        seed,
    }
}

/// Generates the synthetic alternating good/bad trace of Figure 15.
pub fn alternating_trace(recipe: &AlternatingRecipe, seed: u64) -> LinkTrace {
    let mut cfg = LinkConfig::new(SHORT_RANGE);
    cfg.noise_power_db = -recipe.snr_good_db;
    cfg.fading = FadingSpec::None;
    cfg.attenuation = Attenuation::SquareWave {
        db_good: 0.0,
        db_bad: recipe.snr_bad_db - recipe.snr_good_db,
        period: 2.0 * recipe.half_period,
    };
    cfg.seed = seed;
    let mut link = Link::new(cfg);
    LinkTrace {
        name: "alternating".into(),
        mode_name: SHORT_RANGE.name.to_string(),
        interval: recipe.interval,
        duration: recipe.duration,
        series: run_probe_series(
            &mut link,
            recipe.duration,
            recipe.interval,
            recipe.payload_len,
        ),
        seed,
    }
}

/// Generates BER samples for the static estimation study (Figure 7):
/// long-range mode, static channels, power sweep. Parallel over
/// (pair, power).
pub fn static_ber_samples(recipe: &StaticRecipe) -> Vec<BerSample> {
    let mut jobs = Vec::new();
    for pair in 0..recipe.n_pairs {
        for &p in &recipe.tx_powers_db {
            jobs.push((pair, p));
        }
    }
    let frames = recipe.frames_per_point;
    let payload = recipe.payload_len;
    let noise = recipe.noise_db;
    let batches = par_map(jobs, move |(pair, power)| {
        ber_sample_batch(
            LONG_RANGE,
            FadingSpec::None,
            power,
            noise,
            0.0,
            frames,
            payload,
            0x42455221 ^ ((pair as u64) << 32) ^ (power.to_bits() >> 20),
        )
    });
    batches.into_iter().flatten().collect()
}

/// Generates BER samples over a fading channel at one Doppler spread
/// (Figures 8/9): simulation mode, power sweep.
pub fn mobile_ber_samples(
    doppler_hz: f64,
    tx_powers_db: &[f64],
    frames_per_point: usize,
    payload_len: usize,
    noise_db: f64,
) -> Vec<BerSample> {
    let jobs: Vec<f64> = tx_powers_db.to_vec();
    let batches = par_map(jobs, move |power| {
        ber_sample_batch(
            SIMULATION,
            FadingSpec::Flat { doppler_hz },
            power,
            noise_db,
            doppler_hz,
            frames_per_point,
            payload_len,
            0x4D4F4249 ^ (doppler_hz as u64) << 24 ^ (power.to_bits() >> 20),
        )
    });
    batches.into_iter().flatten().collect()
}

/// One batch of probes at a fixed (mode, fading, power): all rates,
/// `frames` frames each, spaced widely enough in time for the fading to
/// decorrelate between frames.
#[allow(clippy::too_many_arguments)]
fn ber_sample_batch(
    mode: Mode,
    fading: FadingSpec,
    tx_power_db: f64,
    noise_db: f64,
    doppler_hz: f64,
    frames: usize,
    payload_len: usize,
    seed: u64,
) -> Vec<BerSample> {
    let mut cfg = LinkConfig::new(mode);
    cfg.tx_power_db = tx_power_db;
    cfg.noise_power_db = noise_db;
    cfg.fading = fading;
    cfg.seed = seed;
    let mut link = Link::new(cfg);
    let mut out = Vec::with_capacity(frames * N_RATES);
    let mut t = 0.0;
    for _ in 0..frames {
        for (r, &rate) in PAPER_RATES.iter().enumerate() {
            let (tx, obs) = link.probe(rate, payload_len, t, &[], false);
            let (softphy_ber, snr_est_db, delivered) = match &obs.rx {
                Some(rx) if rx.header.is_some() && !rx.llrs.is_empty() => {
                    let hints = FrameHints::from_llrs(&rx.llrs, rx.info_bits_per_symbol.max(1));
                    (Some(hints.frame_ber()), Some(rx.snr_db), rx.crc_ok)
                }
                Some(rx) => (None, Some(rx.snr_db), false),
                None => (None, None, false),
            };
            out.push(BerSample {
                rate_idx: r,
                tx_power_db,
                doppler_hz,
                snr_est_db,
                softphy_ber,
                true_ber: obs.true_ber,
                probe_bits: tx.info_bits.len(),
                delivered,
            });
            t += 0.02; // 20 ms spacing: decorrelated even at 40 Hz Doppler
        }
    }
    out
}

/// Outcome classification for the interference-detection study (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectionOutcome {
    /// Frame received intact despite the interferer.
    Correct,
    /// Received with bit errors and the detector flagged a collision.
    ErroredFlagged,
    /// Received with bit errors but the detector called it noise.
    ErroredMissed,
    /// Preamble (or header) lost: no feedback possible.
    SilentLoss,
}

/// One frame of the interference-detection experiment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DetectionSample {
    /// Sender's rate index.
    pub rate_idx: usize,
    /// Interferer power relative to the sender, dB.
    pub rel_power_db: f64,
    /// Classification.
    pub outcome: DetectionOutcome,
    /// Ground truth: did interference overlap the payload?
    pub truly_interfered: bool,
}

/// Runs the static interference experiment (Table 4 row 4): a clean strong
/// link hit by an interferer with ~one-frame random jitter.
pub fn interference_detection_samples(recipe: &InterferenceRecipe) -> Vec<DetectionSample> {
    let mut jobs = Vec::new();
    for &p in &recipe.rel_powers_db {
        for r in 0..N_RATES {
            jobs.push((p, r));
        }
    }
    let frames = recipe.frames_per_point;
    let payload = recipe.payload_len;
    let int_payload = recipe.interferer_payload_len;
    let snr = recipe.snr_db;
    let batches = par_map(jobs, move |(rel_power, rate_idx)| {
        interference_batch(rel_power, rate_idx, frames, payload, int_payload, snr)
    });
    batches.into_iter().flatten().collect()
}

fn interference_batch(
    rel_power_db: f64,
    rate_idx: usize,
    frames: usize,
    payload: usize,
    interferer_payload: usize,
    snr_db: f64,
) -> Vec<DetectionSample> {
    let seed = 0x494E5446 ^ ((rate_idx as u64) << 40) ^ (rel_power_db.to_bits() >> 16);
    let mut cfg = LinkConfig::new(SIMULATION);
    cfg.noise_power_db = -snr_db;
    cfg.seed = seed;
    let mut link = Link::new(cfg);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4A495454);
    let detector = CollisionDetector::default();
    let rate = PAPER_RATES[rate_idx];

    // Interferer frame at a random paper rate each transmission.
    let mut out = Vec::with_capacity(frames);
    let victim_syms = softrate_phy::frame::frame_symbol_count(&SIMULATION, rate, payload, false);
    for k in 0..frames {
        let int_rate = PAPER_RATES[rng.gen_range(0..N_RATES)];
        let symbols = interferer_frame(&SIMULATION, int_rate, interferer_payload, seed ^ k as u64);
        // Random jitter of about one packet-time either way (paper §5.1).
        let span = victim_syms.max(symbols.len()) as isize;
        let start_symbol = rng.gen_range(-span..=span);
        let interferer = Interferer {
            symbols,
            start_symbol,
            power_db: rel_power_db,
            channel: ChannelInstance::new(
                FadingSpec::None,
                Attenuation::NONE,
                SIMULATION.n_used(),
                seed ^ 0xC0FFEE ^ k as u64,
            ),
        };
        let t = k as f64 * 0.01;
        let (_, obs) = link.probe(rate, payload, t, std::slice::from_ref(&interferer), false);
        let truly_interfered = obs.any_interference;

        let outcome = match &obs.rx {
            None => DetectionOutcome::SilentLoss,
            Some(rx) if rx.header.is_none() => DetectionOutcome::SilentLoss,
            Some(rx) if rx.crc_ok => DetectionOutcome::Correct,
            Some(rx) => {
                let hints = FrameHints::from_llrs(&rx.llrs, rx.info_bits_per_symbol.max(1));
                if detector.detect(&hints).collision_detected {
                    DetectionOutcome::ErroredFlagged
                } else {
                    DetectionOutcome::ErroredMissed
                }
            }
        };
        out.push(DetectionSample {
            rate_idx,
            rel_power_db,
            outcome,
            truly_interfered,
        });
    }
    out
}

/// False-positive study (§5.3): frames over interference-free channels;
/// returns `(frames_with_errors, errored_frames_flagged_as_collision)`.
pub fn quiet_detection_run(
    fading: FadingSpec,
    mean_snr_db: f64,
    n_frames: usize,
    payload_len: usize,
    seed: u64,
) -> (usize, usize) {
    let mut cfg = LinkConfig::new(SIMULATION);
    cfg.noise_power_db = -mean_snr_db;
    cfg.fading = fading;
    cfg.seed = seed;
    let mut link = Link::new(cfg);
    let detector = CollisionDetector::default();
    let mut errored = 0usize;
    let mut flagged = 0usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    for k in 0..n_frames {
        let rate = PAPER_RATES[rng.gen_range(0..N_RATES)];
        let t = k as f64 * 0.007;
        let (_, obs) = link.probe(rate, payload_len, t, &[], false);
        if let Some(rx) = &obs.rx {
            if rx.header.is_some() && !rx.crc_ok && !rx.llrs.is_empty() {
                errored += 1;
                let hints = FrameHints::from_llrs(&rx.llrs, rx.info_bits_per_symbol.max(1));
                if detector.detect(&hints).collision_detected {
                    flagged += 1;
                }
            }
        }
    }
    (errored, flagged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipes::PROBE_INTERVAL;

    #[test]
    fn walking_trace_smoke_has_shape() {
        let recipe = WalkingRecipe {
            duration: 0.1,
            ..WalkingRecipe::smoke()
        };
        let tr = walking_trace(0, &recipe);
        assert_eq!(tr.n_rates(), N_RATES);
        assert_eq!(tr.n_steps(), (0.1 / PROBE_INTERVAL).round() as usize);
        // Early in the run the channel is strong: the lowest rate must
        // deliver at least sometimes.
        let low = &tr.series[0];
        assert!(
            low.iter().take(10).any(|e| e.delivered),
            "BPSK 1/2 dead at trace start"
        );
    }

    #[test]
    fn walking_trace_is_deterministic() {
        let recipe = WalkingRecipe {
            duration: 0.05,
            ..WalkingRecipe::smoke()
        };
        let a = walking_trace(3, &recipe);
        let b = walking_trace(3, &recipe);
        assert_eq!(
            a.series[2][4].softphy_ber.map(f64::to_bits),
            b.series[2][4].softphy_ber.map(f64::to_bits)
        );
    }

    #[test]
    fn static_short_trace_is_stable() {
        let recipe = StaticShortRecipe {
            duration: 0.2,
            ..StaticShortRecipe::smoke()
        };
        let tr = static_short_trace(0, &recipe);
        // No fading: the best rate should not change across the trace.
        let fates: Vec<usize> = (0..tr.n_steps())
            .map(|s| tr.best_rate_at(s as f64 * tr.interval, 1400 * 8))
            .collect();
        let first = fates[0];
        let same = fates.iter().filter(|&&f| f == first).count();
        assert!(
            same * 10 >= fates.len() * 9,
            "static trace best rate unstable: {fates:?}"
        );
    }

    #[test]
    fn ber_samples_track_power() {
        // Higher power => more deliveries at a mid rate.
        let lo = ber_sample_batch(SIMULATION, FadingSpec::None, -20.0, -26.0, 0.0, 8, 100, 1);
        let hi = ber_sample_batch(SIMULATION, FadingSpec::None, 0.0, -26.0, 0.0, 8, 100, 1);
        let delivered =
            |v: &[BerSample]| v.iter().filter(|s| s.rate_idx == 3 && s.delivered).count();
        assert!(delivered(&hi) > delivered(&lo));
    }

    #[test]
    fn interference_samples_classify() {
        let recipe = InterferenceRecipe::smoke();
        let samples = interference_detection_samples(&recipe);
        assert_eq!(
            samples.len(),
            recipe.rel_powers_db.len() * N_RATES * recipe.frames_per_point
        );
        // Strong interference must produce at least some errored frames,
        // and the detector must catch a decent share of them.
        let strong: Vec<_> = samples
            .iter()
            .filter(|s| s.rel_power_db == 0.0 && s.truly_interfered)
            .collect();
        assert!(!strong.is_empty());
        let errored: Vec<_> = strong
            .iter()
            .filter(|s| {
                matches!(
                    s.outcome,
                    DetectionOutcome::ErroredFlagged | DetectionOutcome::ErroredMissed
                )
            })
            .collect();
        if !errored.is_empty() {
            let caught = errored
                .iter()
                .filter(|s| s.outcome == DetectionOutcome::ErroredFlagged)
                .count();
            // The committed detector deliberately favours a <1 % false-
            // positive rate over recall (ratio edges + min_region = 3; see
            // core::collision and EXPERIMENTS.md): at equal interferer
            // power a meaningful fraction of errored frames must still be
            // flagged.
            assert!(
                caught * 4 >= errored.len(),
                "detector caught only {caught}/{} at 0 dB",
                errored.len()
            );
        }
    }

    #[test]
    fn quiet_channel_false_positives_are_rare() {
        // Fading-only losses must (almost) never be flagged as collisions.
        let (errored, flagged) =
            quiet_detection_run(FadingSpec::Flat { doppler_hz: 40.0 }, 13.0, 60, 100, 42);
        assert!(errored > 0, "need some errored frames to measure FP rate");
        assert!(
            (flagged as f64) <= (errored as f64) * 0.05 + 1.0,
            "false positives too high: {flagged}/{errored}"
        );
    }

    #[test]
    fn alternating_trace_flips_best_rate() {
        let recipe = AlternatingRecipe {
            duration: 2.0,
            half_period: 1.0,
            ..Default::default()
        };
        let tr = alternating_trace(&recipe, 7);
        // Single instants are noisy (one probe per (rate, step) — a lucky
        // error-free probe at a borderline SNR can momentarily qualify a
        // rate), so compare the oracle averaged over each half-period.
        let mean_best = |t0: f64, t1: f64| -> f64 {
            let steps = ((t1 - t0) / tr.interval) as usize;
            (0..steps)
                .map(|k| tr.best_rate_at(t0 + k as f64 * tr.interval, 1400 * 8) as f64)
                .sum::<f64>()
                / steps as f64
        };
        let good = mean_best(0.0, 1.0);
        let bad = mean_best(1.0, 2.0);
        assert!(
            good > bad + 0.3,
            "good state must allow faster rates on average ({good:.2} vs {bad:.2})"
        );
    }
}
