//! Preamble generation and preamble-based channel / SNR estimation.
//!
//! The paper's prototype "computes an SNR estimate for each received frame
//! using the Schmidl-Cox method [22]" — i.e. from the *repeated training
//! symbols at the start of the frame*. We reproduce that structure: two
//! identical preamble OFDM symbols; averaging them estimates the channel,
//! differencing them estimates the noise floor. Crucially this measures SNR
//! only at the start of the frame — fades during the frame body are
//! invisible to it, which is exactly the weakness of SNR-based rate
//! adaptation the paper demonstrates (§5.2).

use crate::complex::Complex;
use crate::ofdm::Mode;

/// Number of (identical) preamble OFDM symbols at the start of every frame.
pub const NUM_PREAMBLE_SYMBOLS: usize = 2;

/// Number of postamble OFDM symbols appended when postambles are enabled
/// (§3.2: lets the receiver detect a frame whose preamble was lost to
/// interference).
pub const NUM_POSTAMBLE_SYMBOLS: usize = 1;

/// The known training value on used subcarrier `k`: a deterministic
/// unit-magnitude pseudo-QPSK sequence (both transmitter and receiver can
/// regenerate it).
pub fn training_value(k: usize) -> Complex {
    // Quarter-turn phases from a cheap integer hash: constant envelope, flat
    // spectrum across subcarriers.
    let mut x = (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let phase = std::f64::consts::FRAC_PI_2 * ((x >> 60) & 3) as f64 + std::f64::consts::FRAC_PI_4;
    Complex::cis(phase)
}

/// Builds one preamble OFDM symbol (training on every used subcarrier).
pub fn preamble_symbol(mode: &Mode) -> Vec<Complex> {
    (0..mode.n_used()).map(training_value).collect()
}

/// Builds the postamble OFDM symbol. A different deterministic sequence from
/// the preamble so the two are distinguishable.
pub fn postamble_symbol(mode: &Mode) -> Vec<Complex> {
    (0..mode.n_used())
        .map(|k| training_value(k + 0x10_000))
        .collect()
}

/// Channel state estimated from the preamble.
#[derive(Debug, Clone)]
pub struct ChannelEstimate {
    /// Least-squares channel estimate per used subcarrier.
    pub h: Vec<Complex>,
    /// Estimated complex-noise variance per sample (E|n|^2).
    pub noise_var: f64,
    /// Estimated mean received signal power per used subcarrier.
    pub signal_power: f64,
}

impl ChannelEstimate {
    /// Preamble SNR estimate in dB — the quantity an SNR-based rate
    /// adaptation protocol would feed back.
    pub fn snr_db(&self) -> f64 {
        10.0 * (self.signal_power / self.noise_var.max(1e-15))
            .max(1e-15)
            .log10()
    }

    /// Linear SNR.
    pub fn snr_linear(&self) -> f64 {
        self.signal_power / self.noise_var.max(1e-15)
    }
}

/// Estimates the channel and noise floor from the two received preamble
/// symbols.
///
/// With identical transmitted symbols `x_k`: the per-subcarrier average
/// `(y1 + y2)/2` estimates `h_k x_k` with halved noise; the difference
/// `(y1 - y2)` contains only noise, giving an unbiased noise-variance
/// estimate `mean |y1 - y2|^2 / 2`.
pub fn estimate_channel(p1: &[Complex], p2: &[Complex], mode: &Mode) -> ChannelEstimate {
    assert_eq!(p1.len(), mode.n_used());
    assert_eq!(p2.len(), mode.n_used());
    let n = mode.n_used();

    let mut h = Vec::with_capacity(n);
    let mut noise_acc = 0.0;
    let mut sig_acc = 0.0;
    for k in 0..n {
        let x = training_value(k);
        let avg = (p1[k] + p2[k]).scale(0.5);
        // |x| = 1, so dividing by x is just a rotation; still write the
        // general LS form.
        h.push(avg / x);
        noise_acc += (p1[k] - p2[k]).norm_sqr();
        sig_acc += avg.norm_sqr();
    }
    let noise_var = (noise_acc / n as f64) / 2.0;
    // The averaged preamble still carries noise_var/2 of noise power;
    // subtract it so the SNR estimate is unbiased.
    let signal_power = (sig_acc / n as f64 - noise_var / 2.0).max(1e-15);
    ChannelEstimate {
        h,
        noise_var,
        signal_power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ofdm::SIMULATION;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn gaussian_pair(rng: &mut SmallRng) -> (f64, f64) {
        // Box-Muller.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let t = 2.0 * std::f64::consts::PI * u2;
        (r * t.cos(), r * t.sin())
    }

    fn noisy_preambles(h: Complex, noise_var: f64, seed: u64) -> (Vec<Complex>, Vec<Complex>) {
        let mode = SIMULATION;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mk = |rng: &mut SmallRng| {
            preamble_symbol(&mode)
                .into_iter()
                .map(|x| {
                    let (nr, ni) = gaussian_pair(rng);
                    h * x + Complex::new(nr, ni).scale((noise_var / 2.0).sqrt())
                })
                .collect::<Vec<_>>()
        };
        (mk(&mut rng), mk(&mut rng))
    }

    #[test]
    fn training_values_are_unit_magnitude() {
        for k in 0..2048 {
            assert!((training_value(k).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pre_and_postamble_differ() {
        let pre = preamble_symbol(&SIMULATION);
        let post = postamble_symbol(&SIMULATION);
        let same = pre
            .iter()
            .zip(&post)
            .filter(|(a, b)| (**a - **b).abs() < 1e-9)
            .count();
        assert!(
            same < pre.len() / 2,
            "sequences too similar: {same} matches"
        );
    }

    #[test]
    fn noiseless_estimate_recovers_channel() {
        let h = Complex::from_polar(0.8, 0.9);
        let p = preamble_symbol(&SIMULATION);
        let rx: Vec<Complex> = p.iter().map(|&x| h * x).collect();
        let est = estimate_channel(&rx, &rx, &SIMULATION);
        for hk in &est.h {
            assert!((hk.re - h.re).abs() < 1e-12 && (hk.im - h.im).abs() < 1e-12);
        }
        assert!(est.noise_var < 1e-20);
    }

    #[test]
    fn snr_estimate_tracks_true_snr() {
        // |h|^2 = 1, noise 0.1 => SNR = 10 dB. Expect within ~1 dB.
        let (p1, p2) = noisy_preambles(Complex::ONE, 0.1, 7);
        let est = estimate_channel(&p1, &p2, &SIMULATION);
        assert!((est.snr_db() - 10.0).abs() < 1.0, "snr {}", est.snr_db());
    }

    #[test]
    fn noise_estimate_tracks_true_noise() {
        for (nv, seed) in [(0.01, 1u64), (0.1, 2), (1.0, 3)] {
            let (p1, p2) = noisy_preambles(Complex::ONE, nv, seed);
            let est = estimate_channel(&p1, &p2, &SIMULATION);
            let rel = (est.noise_var - nv).abs() / nv;
            assert!(rel < 0.35, "noise {nv}: estimated {}", est.noise_var);
        }
    }

    #[test]
    fn low_snr_estimate_is_low() {
        // Signal far below noise: estimated SNR must be small/negative.
        let (p1, p2) = noisy_preambles(Complex::new(0.05, 0.0), 1.0, 9);
        let est = estimate_channel(&p1, &p2, &SIMULATION);
        assert!(est.snr_db() < 0.0, "snr {}", est.snr_db());
    }
}
