//! Precomputed trellis of the 802.11 convolutional code, shared by the
//! Viterbi and BCJR decoders.

use crate::convolutional::{encode_step, NUM_STATES};

/// One trellis transition: from a state, on an input bit, to a next state,
/// emitting two coded bits.
#[derive(Debug, Clone, Copy)]
pub struct Transition {
    /// Originating state.
    pub from: usize,
    /// Input (information) bit driving the transition.
    pub input: u8,
    /// Destination state.
    pub to: usize,
    /// First coded output bit (generator A).
    pub out_a: u8,
    /// Second coded output bit (generator B).
    pub out_b: u8,
}

/// The full trellis: forward transitions indexed by `(state, input)` and the
/// reverse adjacency used by the backward BCJR recursion.
#[derive(Debug, Clone)]
pub struct Trellis {
    /// `forward[state][input]` — the transition taken from `state` on `input`.
    pub forward: Vec<[Transition; 2]>,
    /// `reverse[state]` — the two transitions arriving at `state`.
    pub reverse: Vec<[Transition; 2]>,
}

impl Trellis {
    /// Builds the 64-state trellis of the 133/171 code.
    pub fn new() -> Self {
        let mut forward = Vec::with_capacity(NUM_STATES);
        for state in 0..NUM_STATES {
            let mut row = [Transition {
                from: 0,
                input: 0,
                to: 0,
                out_a: 0,
                out_b: 0,
            }; 2];
            for input in 0..2u8 {
                let (a, b, next) = encode_step(state, input);
                row[input as usize] = Transition {
                    from: state,
                    input,
                    to: next,
                    out_a: a,
                    out_b: b,
                };
            }
            forward.push(row);
        }

        let mut incoming: Vec<Vec<Transition>> =
            (0..NUM_STATES).map(|_| Vec::with_capacity(2)).collect();
        for row in &forward {
            for t in row {
                incoming[t.to].push(*t);
            }
        }
        let reverse: Vec<[Transition; 2]> = incoming
            .into_iter()
            .map(|v| {
                assert_eq!(v.len(), 2, "every state must have exactly two predecessors");
                [v[0], v[1]]
            })
            .collect();

        Trellis { forward, reverse }
    }

    /// Number of states (64 for the 802.11 code).
    pub fn num_states(&self) -> usize {
        self.forward.len()
    }
}

impl Default for Trellis {
    fn default() -> Self {
        Trellis::new()
    }
}

/// Jacobian logarithm `max*(a, b) = ln(e^a + e^b)`, the numerically stable
/// log-domain addition used by the log-MAP BCJR recursion.
#[inline]
pub fn max_star(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let m = a.max(b);
    m + (-(a - b).abs()).exp().ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trellis_has_64_states() {
        let t = Trellis::new();
        assert_eq!(t.num_states(), 64);
    }

    #[test]
    fn forward_transitions_are_consistent() {
        let t = Trellis::new();
        for state in 0..t.num_states() {
            for input in 0..2usize {
                let tr = t.forward[state][input];
                assert_eq!(tr.from, state);
                assert_eq!(tr.input as usize, input);
                assert!(tr.to < t.num_states());
            }
        }
    }

    #[test]
    fn reverse_is_inverse_of_forward() {
        let t = Trellis::new();
        for state in 0..t.num_states() {
            for tr in &t.reverse[state] {
                assert_eq!(tr.to, state);
                let fwd = t.forward[tr.from][tr.input as usize];
                assert_eq!(fwd.to, state);
                assert_eq!(fwd.out_a, tr.out_a);
                assert_eq!(fwd.out_b, tr.out_b);
            }
        }
    }

    #[test]
    fn each_state_reachable_from_two_distinct_predecessors() {
        let t = Trellis::new();
        for state in 0..t.num_states() {
            let [p, q] = t.reverse[state];
            assert!(p.from != q.from || p.input != q.input);
        }
    }

    #[test]
    fn max_star_properties() {
        // max*(a, b) >= max(a, b) and equals ln(e^a + e^b).
        let cases: [(f64, f64); 4] = [(0.0, 0.0), (1.0, -1.0), (-30.0, 2.0), (5.0, 5.0)];
        for (a, b) in cases {
            let exact = (a.exp() + b.exp()).ln();
            assert!((max_star(a, b) - exact).abs() < 1e-12, "({a},{b})");
            assert!(max_star(a, b) >= a.max(b));
        }
    }

    #[test]
    fn max_star_handles_neg_infinity() {
        assert_eq!(max_star(f64::NEG_INFINITY, 3.0), 3.0);
        assert_eq!(max_star(3.0, f64::NEG_INFINITY), 3.0);
        assert_eq!(
            max_star(f64::NEG_INFINITY, f64::NEG_INFINITY),
            f64::NEG_INFINITY
        );
    }
}
