//! Frame check sequences.
//!
//! SoftRate frames carry two CRCs (paper §3): the usual CRC-32 over the whole
//! payload (the 802.11 FCS), plus a *separate CRC-16 over the link-layer
//! header* so that the receiver can identify the sender/receiver of a frame
//! and send BER feedback even when the payload has bit errors.

/// CRC-32 (IEEE 802.3 polynomial 0x04C11DB7, reflected), as used for the
/// 802.11 frame check sequence.
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320; // reflected 0x04C11DB7
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

/// CRC-16/CCITT-FALSE (polynomial 0x1021, init 0xFFFF), used for the
/// link-layer header check.
pub fn crc16(data: &[u8]) -> u16 {
    const POLY: u16 = 0x1021;
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ POLY;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// Appends a little-endian CRC-32 to `data`.
pub fn append_crc32(data: &mut Vec<u8>) {
    let c = crc32(data);
    data.extend_from_slice(&c.to_le_bytes());
}

/// Verifies and strips a trailing little-endian CRC-32. Returns the payload
/// without the CRC if it matches, `None` otherwise.
pub fn check_crc32(data: &[u8]) -> Option<&[u8]> {
    if data.len() < 4 {
        return None;
    }
    let (payload, tail) = data.split_at(data.len() - 4);
    let expected = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    if crc32(payload) == expected {
        Some(payload)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc16_check_vector() {
        // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn crc32_empty() {
        assert_eq!(crc32(&[]), 0x0000_0000);
    }

    #[test]
    fn append_and_check_roundtrip() {
        let mut data = b"softrate frame payload".to_vec();
        append_crc32(&mut data);
        assert_eq!(check_crc32(&data), Some(&b"softrate frame payload"[..]));
    }

    #[test]
    fn corrupted_payload_fails_check() {
        let mut data = b"hello world".to_vec();
        append_crc32(&mut data);
        data[2] ^= 0x04;
        assert_eq!(check_crc32(&data), None);
    }

    #[test]
    fn corrupted_crc_fails_check() {
        let mut data = b"hello world".to_vec();
        append_crc32(&mut data);
        let n = data.len();
        data[n - 1] ^= 0x80;
        assert_eq!(check_crc32(&data), None);
    }

    #[test]
    fn short_input_fails_check() {
        assert_eq!(check_crc32(&[1, 2, 3]), None);
        assert_eq!(check_crc32(&[]), None);
    }

    #[test]
    fn single_bit_sensitivity() {
        // Flipping any single bit in a short message must change the CRC.
        let base = b"abcdef".to_vec();
        let c0 = crc32(&base);
        for i in 0..base.len() * 8 {
            let mut m = base.clone();
            m[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&m), c0, "bit {i} undetected");
        }
    }
}
