//! Soft-input Viterbi decoding, with an optional soft-output (SOVA) mode.
//!
//! The paper proposes "Viterbi [6] with soft outputs [8], or BCJR [2]" as
//! SoftPHY hint sources (§3.1). The main pipeline uses BCJR
//! ([`crate::bcjr`]); this module provides the classic maximum-likelihood
//! hard decoder used for cross-checking, plus a Hagenauer-Hoeher style SOVA
//! whose reliabilities serve as an alternative hint source in the ablation
//! benchmarks.

use crate::convolutional::{NUM_STATES, TAIL_BITS};
use crate::trellis::Trellis;

/// SOVA reliability update window, in trellis steps. 5x the constraint
/// length is the customary choice; merges beyond this depth almost never
/// change decisions for the 133/171 code.
const SOVA_WINDOW: usize = 35;

/// Maximum-likelihood (hard output) decode of a terminated codeword.
///
/// `coded_llrs` is the depunctured LLR stream (length `2 * (n_info + tail)`,
/// positive favours bit 1). Returns the `n_info` decoded payload bits.
pub fn viterbi_decode(coded_llrs: &[f64]) -> Vec<u8> {
    decode_internal(coded_llrs, false).bits
}

/// SOVA decode: maximum-likelihood bits plus a per-bit reliability
/// (an approximation of `|LLR|`, directly comparable to BCJR hints).
pub fn sova_decode(coded_llrs: &[f64]) -> (Vec<u8>, Vec<f64>) {
    let out = decode_internal(coded_llrs, true);
    (out.bits, out.reliability)
}

struct ViterbiOutput {
    bits: Vec<u8>,
    reliability: Vec<f64>,
}

fn decode_internal(coded_llrs: &[f64], soft: bool) -> ViterbiOutput {
    assert!(
        coded_llrs.len().is_multiple_of(2),
        "coded LLR stream must be even-length"
    );
    let steps = coded_llrs.len() / 2;
    assert!(steps > TAIL_BITS, "codeword shorter than the tail");
    let n_info = steps - TAIL_BITS;

    let trellis = Trellis::new();
    const NEG: f64 = f64::NEG_INFINITY;

    let metric = |k: usize, out_a: u8, out_b: u8| -> f64 {
        let la = coded_llrs[2 * k];
        let lb = coded_llrs[2 * k + 1];
        0.5 * ((2.0 * out_a as f64 - 1.0) * la + (2.0 * out_b as f64 - 1.0) * lb)
    };

    // Add-compare-select. survivor[k][s] = (predecessor state, input bit);
    // delta[k][s] = metric margin over the discarded path into (k, s).
    let mut pm = vec![NEG; NUM_STATES];
    pm[0] = 0.0;
    let mut survivor = vec![vec![(0usize, 0u8); NUM_STATES]; steps];
    let mut delta = if soft {
        vec![vec![f64::INFINITY; NUM_STATES]; steps]
    } else {
        Vec::new()
    };

    for k in 0..steps {
        let mut next = vec![NEG; NUM_STATES];
        let mut surv = vec![(0usize, 0u8); NUM_STATES];
        let mut dlt = vec![f64::INFINITY; NUM_STATES];
        for s in 0..NUM_STATES {
            let [p, q] = trellis.reverse[s];
            let mp = if pm[p.from] == NEG {
                NEG
            } else {
                pm[p.from] + metric(k, p.out_a, p.out_b)
            };
            let mq = if pm[q.from] == NEG {
                NEG
            } else {
                pm[q.from] + metric(k, q.out_a, q.out_b)
            };
            if mp >= mq {
                next[s] = mp;
                surv[s] = (p.from, p.input);
                if mq != NEG {
                    dlt[s] = mp - mq;
                }
            } else {
                next[s] = mq;
                surv[s] = (q.from, q.input);
                if mp != NEG {
                    dlt[s] = mq - mp;
                }
            }
        }
        pm = next;
        survivor[k] = surv;
        if soft {
            delta[k] = dlt;
        }
    }

    // Trace back the maximum-likelihood path from the terminated state 0.
    let mut path_state = vec![0usize; steps + 1];
    let mut decisions = vec![0u8; steps];
    path_state[steps] = 0;
    for k in (0..steps).rev() {
        let (prev, input) = survivor[k][path_state[k + 1]];
        decisions[k] = input;
        path_state[k] = prev;
    }

    let mut reliability = Vec::new();
    if soft {
        // Hagenauer-Hoeher update: at each merge along the ML path, trace the
        // competing path back over the update window; decisions that differ
        // from the ML path have their reliability capped by the merge margin.
        let mut rel = vec![f64::INFINITY; steps];
        for k in 0..steps {
            let s = path_state[k + 1];
            let d = delta[k][s];
            if d == f64::INFINITY {
                continue;
            }
            // Identify the competing (discarded) predecessor transition.
            let [p, q] = trellis.reverse[s];
            let (win_prev, _) = survivor[k][s];
            let loser = if p.from == win_prev && p.input == decisions[k] {
                q
            } else {
                p
            };
            // The competing path differs at step k if its input differs.
            if loser.input != decisions[k] {
                rel[k] = rel[k].min(d);
            }
            // Walk the competing path backwards, comparing decisions.
            let mut comp_state = loser.from;
            let start = k.saturating_sub(SOVA_WINDOW);
            for j in (start..k).rev() {
                let (comp_prev, comp_input) = survivor[j][comp_state];
                if comp_input != decisions[j] {
                    rel[j] = rel[j].min(d);
                }
                comp_state = comp_prev;
                if comp_state == path_state[j] {
                    break; // paths have re-merged; earlier decisions agree
                }
            }
        }
        // Cap "infinite" confidence for downstream numeric use.
        reliability = rel[..n_info]
            .iter()
            .map(|&r| if r.is_finite() { r } else { 1e3 })
            .collect();
    }

    ViterbiOutput {
        bits: decisions[..n_info].to_vec(),
        reliability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::{bytes_to_bits, deterministic_payload};
    use crate::convolutional::encode;

    fn ideal_llrs(coded: &[u8], mag: f64) -> Vec<f64> {
        coded
            .iter()
            .map(|&b| if b == 1 { mag } else { -mag })
            .collect()
    }

    #[test]
    fn decodes_clean_codeword() {
        let info = bytes_to_bits(&deterministic_payload(10, 32));
        let coded = encode(&info);
        assert_eq!(viterbi_decode(&ideal_llrs(&coded, 4.0)), info);
    }

    #[test]
    fn corrects_isolated_flips() {
        let info = bytes_to_bits(&deterministic_payload(11, 32));
        let mut coded = encode(&info);
        for idx in [5, 77, 141, 300] {
            coded[idx] ^= 1;
        }
        assert_eq!(viterbi_decode(&ideal_llrs(&coded, 4.0)), info);
    }

    #[test]
    fn agrees_with_bcjr_hard_decisions() {
        use crate::bcjr::BcjrDecoder;
        // On a moderately noisy (but decodable) stream, ML and MAP hard
        // decisions agree except possibly at genuinely ambiguous bits; on a
        // clean stream they must agree exactly.
        let info = bytes_to_bits(&deterministic_payload(12, 48));
        let coded = encode(&info);
        let llrs = ideal_llrs(&coded, 2.0);
        let vit = viterbi_decode(&llrs);
        let map = BcjrDecoder::new().decode(&llrs);
        assert_eq!(vit, map.bits);
    }

    #[test]
    fn sova_reliability_dips_near_weak_bits() {
        // Attenuate the channel LLRs around one info bit; SOVA reliability
        // there must be lower than the frame median.
        let info = bytes_to_bits(&deterministic_payload(13, 64));
        let coded = encode(&info);
        let mut llrs = ideal_llrs(&coded, 4.0);
        let weak_bit = 200usize; // info bit index
        #[allow(clippy::needless_range_loop)] // `c` is a coded-bit position in the stream
        for c in 2 * weak_bit..2 * weak_bit + 14 {
            llrs[c] *= 0.05;
        }
        let (bits, rel) = sova_decode(&llrs);
        assert_eq!(bits, info, "still decodable");
        let mut sorted = rel.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let local_min = rel[weak_bit.saturating_sub(3)..weak_bit + 4]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(
            local_min < median,
            "reliability near weakened bit ({local_min}) should dip below median ({median})"
        );
    }

    #[test]
    fn sova_outputs_one_reliability_per_bit() {
        let info = bytes_to_bits(&deterministic_payload(14, 16));
        let coded = encode(&info);
        let (bits, rel) = sova_decode(&ideal_llrs(&coded, 3.0));
        assert_eq!(bits.len(), info.len());
        assert_eq!(rel.len(), info.len());
        assert!(rel.iter().all(|&r| r >= 0.0 && r.is_finite()));
    }
}
