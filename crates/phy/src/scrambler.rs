//! The 802.11 frame-synchronous scrambler (x^7 + x^4 + 1).
//!
//! Real 802.11 whitens payload bits before encoding so that pathological
//! payloads (long runs of zeros) don't produce degenerate waveforms. Our
//! experiment payloads are pseudo-random already, so the frame pipeline
//! leaves scrambling to callers; the implementation is provided for
//! completeness and for users feeding real data through the PHY.

/// 7-bit LFSR scrambler state. 802.11 initializes it to a pseudo-random
/// nonzero value per frame (carried in the SERVICE field); any nonzero
/// 7-bit seed works here.
#[derive(Debug, Clone, Copy)]
pub struct Scrambler {
    state: u8,
}

impl Scrambler {
    /// Creates a scrambler; `seed` must have a nonzero low 7 bits.
    pub fn new(seed: u8) -> Self {
        let state = seed & 0x7F;
        assert!(state != 0, "scrambler seed must be nonzero");
        Scrambler { state }
    }

    /// The standard's all-ones initial state.
    pub fn default_seed() -> Self {
        Scrambler::new(0x7F)
    }

    /// Next keystream bit: feedback x^7 + x^4 + 1.
    #[inline]
    fn next_bit(&mut self) -> u8 {
        let b = ((self.state >> 6) ^ (self.state >> 3)) & 1;
        self.state = ((self.state << 1) | b) & 0x7F;
        b
    }

    /// Scrambles (or descrambles — the operation is an involution given
    /// the same seed) a bit slice in place.
    pub fn apply(&mut self, bits: &mut [u8]) {
        for bit in bits {
            *bit ^= self.next_bit();
        }
    }

    /// Convenience: returns a scrambled copy.
    pub fn scrambled(mut self, bits: &[u8]) -> Vec<u8> {
        let mut out = bits.to_vec();
        self.apply(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::bytes_to_bits;

    #[test]
    fn scramble_descramble_roundtrip() {
        let data = bytes_to_bits(&[0x00, 0xFF, 0x55, 0xAA, 0x12]);
        let scrambled = Scrambler::new(0x5D).scrambled(&data);
        assert_ne!(scrambled, data);
        let back = Scrambler::new(0x5D).scrambled(&scrambled);
        assert_eq!(back, data);
    }

    #[test]
    fn known_keystream_prefix() {
        // With the all-ones state the 802.11 scrambler's first 16 output
        // bits are 0000 1110 1111 0010 (IEEE 802.11-2007 Figure 17-7,
        // reading the published 127-bit sequence).
        let mut s = Scrambler::default_seed();
        let stream: Vec<u8> = (0..16).map(|_| s.next_bit()).collect();
        assert_eq!(stream, vec![0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn keystream_period_is_127() {
        let mut s = Scrambler::new(0x31);
        let first: Vec<u8> = (0..127).map(|_| s.next_bit()).collect();
        let second: Vec<u8> = (0..127).map(|_| s.next_bit()).collect();
        assert_eq!(first, second, "LFSR period must be 2^7 - 1");
        // And it's not shorter than 127:
        for p in [1usize, 7, 31, 63] {
            assert_ne!(&first[..127 - p], &first[p..], "period divides {p}?");
        }
    }

    #[test]
    fn whitens_all_zero_input() {
        let zeros = vec![0u8; 254];
        let out = Scrambler::default_seed().scrambled(&zeros);
        let ones: usize = out.iter().map(|&b| b as usize).sum();
        // The 127-bit m-sequence has 64 ones per period.
        assert_eq!(ones, 128);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn rejects_zero_seed() {
        Scrambler::new(0x80); // low 7 bits are zero
    }

    #[test]
    fn different_seeds_differ() {
        let data = vec![0u8; 64];
        let a = Scrambler::new(0x01).scrambled(&data);
        let b = Scrambler::new(0x7F).scrambled(&data);
        assert_ne!(a, b);
    }
}
