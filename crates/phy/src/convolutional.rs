//! The 802.11 rate-1/2 convolutional encoder (constraint length 7,
//! generators 133/171 octal) with the standard puncturing to rates 2/3 and
//! 3/4 (paper §4: "incoming data passes through a standard rate-1/2
//! convolutional encoder, after which it is punctured at varying code
//! rates").

use crate::rates::CodeRate;

/// Constraint length of the 802.11 mother code.
pub const CONSTRAINT_LENGTH: usize = 7;
/// Number of encoder states (2^(K-1)).
pub const NUM_STATES: usize = 1 << (CONSTRAINT_LENGTH - 1);
/// Generator polynomial A (0o133).
pub const GEN_A: u32 = 0o133;
/// Generator polynomial B (0o171).
pub const GEN_B: u32 = 0o171;
/// Number of zero tail bits appended to terminate the trellis in state 0.
pub const TAIL_BITS: usize = CONSTRAINT_LENGTH - 1;

#[inline]
fn parity(x: u32) -> u8 {
    (x.count_ones() & 1) as u8
}

/// Computes the (A, B) output pair for input bit `bit` in state `state`.
///
/// State convention: the 6-bit register holds the most recent input bit in
/// its MSB (bit 5). The 7-bit generator window is `bit` (bit 6) followed by
/// the state.
#[inline]
pub fn encode_step(state: usize, bit: u8) -> (u8, u8, usize) {
    debug_assert!(state < NUM_STATES);
    debug_assert!(bit <= 1);
    let window = ((bit as u32) << (CONSTRAINT_LENGTH - 1)) | state as u32;
    let a = parity(window & GEN_A);
    let b = parity(window & GEN_B);
    let next = (window >> 1) as usize;
    (a, b, next)
}

/// Encodes `info` bits with the rate-1/2 mother code, appending
/// [`TAIL_BITS`] zero bits so the trellis terminates in state 0.
///
/// Output is the interleaved stream `[A1, B1, A2, B2, ...]` of length
/// `2 * (info.len() + TAIL_BITS)`.
pub fn encode(info: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 * (info.len() + TAIL_BITS));
    let mut state = 0usize;
    for &bit in info.iter().chain(std::iter::repeat_n(&0u8, TAIL_BITS)) {
        let (a, b, next) = encode_step(state, bit);
        out.push(a);
        out.push(b);
        state = next;
    }
    debug_assert_eq!(state, 0, "tail bits must terminate the trellis");
    out
}

/// Punctures a rate-1/2 coded stream to the target code rate by deleting the
/// positions marked `false` in the rate's puncture pattern.
pub fn puncture(coded: &[u8], rate: CodeRate) -> Vec<u8> {
    let pattern = rate.puncture_pattern();
    coded
        .iter()
        .zip(pattern.iter().cycle())
        .filter_map(|(&bit, &keep)| keep.then_some(bit))
        .collect()
}

/// Number of transmitted (punctured) bits for `n_coded` mother-code bits.
pub fn punctured_len(n_coded: usize, rate: CodeRate) -> usize {
    let pattern = rate.puncture_pattern();
    let period = pattern.len();
    let kept_per_period = pattern.iter().filter(|&&k| k).count();
    let full = n_coded / period;
    let rem = n_coded % period;
    full * kept_per_period + pattern[..rem].iter().filter(|&&k| k).count()
}

/// Number of transmitted bits for `n_info` information bits (tail included).
pub fn coded_len(n_info: usize, rate: CodeRate) -> usize {
    punctured_len(2 * (n_info + TAIL_BITS), rate)
}

/// Re-inserts erasures (LLR 0) at punctured positions, recovering a
/// rate-1/2-aligned LLR stream of length `n_coded` for the decoder.
///
/// `llrs` holds one log-likelihood ratio per *transmitted* bit (positive
/// favours 1). Punctured positions carry no channel information, so the
/// decoder treats them as LLR 0.
pub fn depuncture(llrs: &[f64], rate: CodeRate, n_coded: usize) -> Vec<f64> {
    let pattern = rate.puncture_pattern();
    let mut out = Vec::with_capacity(n_coded);
    let mut it = llrs.iter();
    for i in 0..n_coded {
        if pattern[i % pattern.len()] {
            out.push(*it.next().unwrap_or(&0.0));
        } else {
            out.push(0.0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::bytes_to_bits;

    #[test]
    fn encoder_output_length() {
        let info = vec![1, 0, 1, 1];
        let coded = encode(&info);
        assert_eq!(coded.len(), 2 * (4 + TAIL_BITS));
    }

    #[test]
    fn encoder_known_vector() {
        // All-zero input must produce all-zero output (linear code).
        let coded = encode(&[0; 16]);
        assert!(coded.iter().all(|&b| b == 0));
    }

    #[test]
    fn encoder_impulse_response() {
        // A single 1 followed by zeros emits the generator taps:
        // A outputs = bits of 133 octal MSB-first, B = 171 octal.
        let coded = encode(&[1, 0, 0, 0, 0, 0, 0]);
        let a: Vec<u8> = coded.iter().step_by(2).copied().collect();
        let b: Vec<u8> = coded.iter().skip(1).step_by(2).copied().collect();
        // 0o133 = 1011011 (window MSB = newest bit) read out over 7 steps:
        // step k sees the impulse in window position 6-k.
        let g_a = [1, 0, 1, 1, 0, 1, 1]; // 0o133 bits from bit6 down to bit0
        let g_b = [1, 1, 1, 1, 0, 0, 1]; // 0o171
        assert_eq!(&a[..7], &g_a);
        assert_eq!(&b[..7], &g_b);
    }

    #[test]
    fn trellis_terminates_in_zero_state() {
        // encode() debug-asserts termination; exercise a few payloads.
        for seed in 0..8u64 {
            let payload = crate::bits::deterministic_payload(seed, 32);
            let _ = encode(&bytes_to_bits(&payload));
        }
    }

    #[test]
    fn puncture_lengths() {
        let coded = vec![0u8; 24];
        assert_eq!(puncture(&coded, CodeRate::Half).len(), 24);
        assert_eq!(puncture(&coded, CodeRate::TwoThirds).len(), 18);
        assert_eq!(puncture(&coded, CodeRate::ThreeQuarters).len(), 16);
        for r in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            assert_eq!(puncture(&coded, r).len(), punctured_len(24, r));
        }
    }

    #[test]
    fn punctured_len_partial_period() {
        // 5 coded bits at 3/4: pattern [T T T F F T], first 5 => 3 kept.
        assert_eq!(punctured_len(5, CodeRate::ThreeQuarters), 3);
        assert_eq!(punctured_len(1, CodeRate::TwoThirds), 1);
    }

    #[test]
    fn depuncture_restores_positions() {
        // Encode a known stream, puncture, then depuncture LLRs built from
        // the punctured bits; kept positions must carry the bit sign and
        // deleted positions must be exactly 0.
        let coded: Vec<u8> = (0..12).map(|i| (i % 2) as u8).collect();
        let rate = CodeRate::ThreeQuarters;
        let punct = puncture(&coded, rate);
        let llrs: Vec<f64> = punct
            .iter()
            .map(|&b| if b == 1 { 5.0 } else { -5.0 })
            .collect();
        let restored = depuncture(&llrs, rate, coded.len());
        assert_eq!(restored.len(), coded.len());
        let pattern = rate.puncture_pattern();
        for (i, &l) in restored.iter().enumerate() {
            if pattern[i % pattern.len()] {
                let expect = if coded[i] == 1 { 5.0 } else { -5.0 };
                assert_eq!(l, expect, "position {i}");
            } else {
                assert_eq!(l, 0.0, "punctured position {i} must be erased");
            }
        }
    }

    #[test]
    fn coded_len_matches_pipeline() {
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            for n in [1usize, 7, 64, 100] {
                let info = vec![0u8; n];
                let tx = puncture(&encode(&info), rate);
                assert_eq!(tx.len(), coded_len(n, rate), "n={n} rate={rate:?}");
            }
        }
    }
}
