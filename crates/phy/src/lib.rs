//! # softrate-phy — an 802.11a/g-like software PHY with soft outputs
//!
//! This crate is the physical-layer substrate of the SoftRate reproduction
//! (SIGCOMM 2009). It implements, from scratch, everything the paper's GNU
//! Radio prototype provided:
//!
//! * the 802.11 rate-1/2 constraint-7 convolutional code with puncturing to
//!   2/3 and 3/4 ([`convolutional`]),
//! * a soft-output **BCJR (log-MAP) decoder** emitting per-bit LLRs — the
//!   source of SoftPHY hints ([`bcjr`]) — plus Viterbi/SOVA for comparison
//!   ([`viterbi`]),
//! * Gray-mapped BPSK/QPSK/QAM16/QAM64 with an exact soft demapper
//!   ([`modulation`]),
//! * the 802.11 per-symbol block interleaver ([`interleaver`]),
//! * OFDM operating modes matching the paper's Table 3 ([`ofdm`]),
//! * frame assembly/reception with separately CRC-protected headers,
//!   preamble-based channel/SNR estimation and pilot tracking ([`frame`],
//!   [`snr`], [`crc`]),
//! * the full bit-rate table of Table 2 ([`rates`]).
//!
//! The crate is deterministic and allocation-light; all randomness lives in
//! callers (the channel simulator seeds everything explicitly).
//!
//! ## Quick example
//!
//! ```
//! use softrate_phy::prelude::*;
//!
//! // Build a frame at QPSK 3/4 in the 20 MHz simulation mode.
//! let cfg = FrameConfig::new(SIMULATION, ALL_RATES[3]);
//! let header = FrameHeader { src: 1, dst: 2, rate_idx: 0, payload_len: 0, seq: 7, flags: 0 };
//! let payload = deterministic_payload(1, 120);
//! let tx = build_frame(header, &payload, &cfg);
//!
//! // Loop it back over a perfect channel and decode.
//! let rx = receive_frame(&tx.symbols, &SIMULATION, DemapMethod::Exact, DEFAULT_LLR_CLIP);
//! assert!(rx.crc_ok);
//! assert_eq!(rx.payload.as_deref(), Some(&payload[..]));
//! // Per-bit LLRs are the SoftPHY hint source.
//! assert_eq!(rx.llrs.len(), tx.info_bits.len());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bcjr;
pub mod bits;
pub mod complex;
pub mod convolutional;
pub mod crc;
pub mod frame;
pub mod interleaver;
pub mod modulation;
pub mod ofdm;
pub mod rates;
pub mod scrambler;
pub mod snr;
pub mod trellis;
pub mod viterbi;

/// Convenient glob-import of the most common items.
pub mod prelude {
    pub use crate::bcjr::{BcjrDecoder, SoftDecode};
    pub use crate::bits::{bit_error_rate, bits_to_bytes, bytes_to_bits, deterministic_payload};
    pub use crate::complex::Complex;
    pub use crate::frame::{
        build_frame, frame_airtime_secs, frame_symbol_count, receive_frame, FrameConfig,
        FrameHeader, RxFrame, TxFrame, DEFAULT_LLR_CLIP, FLAG_FEEDBACK, FLAG_POSTAMBLE,
        HEADER_RATE,
    };
    pub use crate::modulation::DemapMethod;
    pub use crate::ofdm::{Mode, ALL_MODES, LONG_RANGE, SHORT_RANGE, SIMULATION};
    pub use crate::rates::{
        rate_index, BitRate, CodeRate, Modulation, ALL_RATES, NUM_PAPER_RATES, PAPER_RATES,
    };
    pub use crate::snr::{
        estimate_channel, ChannelEstimate, NUM_POSTAMBLE_SYMBOLS, NUM_PREAMBLE_SYMBOLS,
    };
}
