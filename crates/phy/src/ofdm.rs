//! OFDM operating modes (paper Table 3) and subcarrier layout.
//!
//! The paper's prototype runs in three modes differing in sampled bandwidth
//! and subcarrier count; symbol time is `tones * (1 + cp) / bandwidth` with
//! a cyclic prefix of one quarter of the OFDM symbol length. We simulate in
//! the frequency domain (one complex sample per used subcarrier per symbol),
//! so the cyclic prefix appears only in the timing arithmetic.

use serde::{Deserialize, Serialize};

use crate::rates::BitRate;

/// An OFDM operating mode: RF bandwidth, FFT size, and subcarrier layout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mode {
    /// Human-readable mode name.
    pub name: &'static str,
    /// Sampled RF bandwidth in Hz.
    pub bandwidth_hz: f64,
    /// FFT size (total subcarriers, paper's "Tones" column).
    pub n_tones: usize,
    /// Subcarriers carrying data.
    pub n_data: usize,
    /// Subcarriers carrying known pilot symbols (for per-symbol channel
    /// tracking).
    pub n_pilot: usize,
    /// Cyclic prefix length as a fraction of the FFT size (1/4 in the
    /// paper).
    pub cp_frac: f64,
}

/// Long range mode: 500 kHz over 1024 tones; symbol time 2.56 ms, frame
/// durations of tens of milliseconds (usable only for static experiments,
/// Table 3).
pub const LONG_RANGE: Mode = Mode {
    name: "long-range",
    bandwidth_hz: 500e3,
    n_tones: 1024,
    n_data: 768,
    n_pilot: 32,
    cp_frac: 0.25,
};

/// Short range mode: 4 MHz over 512 tones; symbol time 160 us, frames under
/// a millisecond (used for the mobility experiments).
pub const SHORT_RANGE: Mode = Mode {
    name: "short-range",
    bandwidth_hz: 4e6,
    n_tones: 512,
    n_data: 384,
    n_pilot: 16,
    cp_frac: 0.25,
};

/// Simulation mode: the normal 20 MHz 802.11 band over 128 tones; symbol
/// time 8 us, 802.11-like frame durations (used with the fading channel
/// simulator).
pub const SIMULATION: Mode = Mode {
    name: "simulation",
    bandwidth_hz: 20e6,
    n_tones: 128,
    n_data: 96,
    n_pilot: 8,
    cp_frac: 0.25,
};

/// All three paper modes, for iteration in tests and table generators.
pub const ALL_MODES: [Mode; 3] = [LONG_RANGE, SHORT_RANGE, SIMULATION];

impl Mode {
    /// OFDM symbol duration in seconds, including the cyclic prefix.
    pub fn symbol_time(&self) -> f64 {
        self.n_tones as f64 * (1.0 + self.cp_frac) / self.bandwidth_hz
    }

    /// Number of used (data + pilot) subcarriers simulated per symbol.
    pub fn n_used(&self) -> usize {
        self.n_data + self.n_pilot
    }

    /// Coded bits per OFDM symbol at `rate` (N_cbps).
    pub fn coded_bits_per_symbol(&self, rate: BitRate) -> usize {
        self.n_data * rate.modulation.bits_per_symbol()
    }

    /// Information (data) bits per OFDM symbol at `rate` (N_dbps).
    pub fn data_bits_per_symbol(&self, rate: BitRate) -> usize {
        let ncbps = self.coded_bits_per_symbol(rate);
        ncbps * rate.code_rate.numerator() / rate.code_rate.denominator()
    }

    /// Indices of pilot subcarriers within the used-subcarrier array:
    /// evenly spaced so scalar tracking sees the whole band.
    pub fn pilot_indices(&self) -> Vec<usize> {
        let stride = self.n_used() / self.n_pilot;
        (0..self.n_pilot).map(|p| p * stride + stride / 2).collect()
    }

    /// Indices of data subcarriers (the used positions that are not pilots).
    pub fn data_indices(&self) -> Vec<usize> {
        let pilots = self.pilot_indices();
        (0..self.n_used()).filter(|i| !pilots.contains(i)).collect()
    }

    /// Pilot BPSK polarity for OFDM symbol `sym_idx`, pilot position `p`:
    /// a fixed pseudo-random +-1 pattern known to both ends.
    pub fn pilot_value(&self, sym_idx: usize, p: usize) -> f64 {
        // Small xorshift over the (symbol, pilot) pair; deterministic and
        // cheap, equivalent in role to 802.11's scrambler-driven polarity.
        let mut x = (sym_idx as u64).wrapping_mul(0x9E37_79B9) ^ ((p as u64) << 17) ^ 0x2545_F491;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        if x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63 == 0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Air time in seconds of `n_symbols` OFDM symbols.
    pub fn airtime(&self, n_symbols: usize) -> f64 {
        n_symbols as f64 * self.symbol_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates::ALL_RATES;

    #[test]
    fn table3_symbol_times() {
        // Paper Table 3: 2.6 ms (quoted rounded), 160 us, 8 us.
        assert!((LONG_RANGE.symbol_time() - 2.56e-3).abs() < 1e-9);
        assert!((SHORT_RANGE.symbol_time() - 160e-6).abs() < 1e-12);
        assert!((SIMULATION.symbol_time() - 8e-6).abs() < 1e-12);
    }

    #[test]
    fn simulation_mode_matches_80211_throughput() {
        // In the 20 MHz simulation mode the data bits per symbol over the
        // symbol time must reproduce Table 2's Mbps column exactly.
        for rate in ALL_RATES {
            let mbps =
                SIMULATION.data_bits_per_symbol(rate) as f64 / SIMULATION.symbol_time() / 1e6;
            assert!(
                (mbps - rate.mbps()).abs() < 1e-9,
                "{rate}: {mbps} vs {}",
                rate.mbps()
            );
        }
    }

    #[test]
    fn ncbps_is_multiple_of_16_for_all_modes_and_rates() {
        // Required by the 802.11 interleaver.
        for mode in ALL_MODES {
            for rate in ALL_RATES {
                assert_eq!(
                    mode.coded_bits_per_symbol(rate) % 16,
                    0,
                    "{} {rate}",
                    mode.name
                );
            }
        }
    }

    #[test]
    fn ndbps_is_integral() {
        for mode in ALL_MODES {
            for rate in ALL_RATES {
                let ncbps = mode.coded_bits_per_symbol(rate);
                assert_eq!(
                    ncbps * rate.code_rate.numerator() % rate.code_rate.denominator(),
                    0,
                    "{} {rate}",
                    mode.name
                );
            }
        }
    }

    #[test]
    fn pilot_and_data_indices_partition_used() {
        for mode in ALL_MODES {
            let pilots = mode.pilot_indices();
            let data = mode.data_indices();
            assert_eq!(pilots.len(), mode.n_pilot);
            assert_eq!(data.len(), mode.n_data);
            let mut all: Vec<usize> = pilots.iter().chain(data.iter()).copied().collect();
            all.sort_unstable();
            let expect: Vec<usize> = (0..mode.n_used()).collect();
            assert_eq!(all, expect, "{}", mode.name);
        }
    }

    #[test]
    fn pilot_values_are_balanced_and_deterministic() {
        let m = SIMULATION;
        let mut plus = 0usize;
        let mut total = 0usize;
        for sym in 0..200 {
            for p in 0..m.n_pilot {
                let v = m.pilot_value(sym, p);
                assert!(v == 1.0 || v == -1.0);
                assert_eq!(v, m.pilot_value(sym, p));
                if v > 0.0 {
                    plus += 1;
                }
                total += 1;
            }
        }
        let frac = plus as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.1, "pilot polarity fraction {frac}");
    }

    #[test]
    fn airtime_scales_linearly() {
        assert_eq!(SIMULATION.airtime(10), 10.0 * SIMULATION.symbol_time());
    }
}
