//! Gray-coded constellation mapping and soft demapping.
//!
//! The mapper takes interleaved coded bits to 802.11a constellation points
//! (unit average energy). The demapper produces per-coded-bit
//! log-likelihood ratios given the received sample, the channel estimate and
//! the noise variance — the channel evidence consumed by the BCJR decoder.

use std::sync::OnceLock;

use crate::complex::Complex;
use crate::rates::Modulation;
use crate::trellis::max_star;

/// A constellation: `points[i]` is the symbol whose Gray-coded bit label is
/// `i` (bit 0 of the label is the *first* of the `bits_per_symbol` coded
/// bits mapped onto the symbol).
#[derive(Debug, Clone)]
pub struct Constellation {
    /// Modulation this table belongs to.
    pub modulation: Modulation,
    /// Symbol for each bit label.
    pub points: Vec<Complex>,
}

/// 802.11a Gray mapping for one axis carrying `bits` bits. Returns the
/// unnormalized coordinate in `{-7..7}`.
fn gray_axis(label: usize, bits: usize) -> f64 {
    match bits {
        1 => match label {
            0 => -1.0,
            _ => 1.0,
        },
        2 => match label {
            0b00 => -3.0,
            0b01 => -1.0,
            0b11 => 1.0,
            _ => 3.0, // 0b10
        },
        3 => match label {
            0b000 => -7.0,
            0b001 => -5.0,
            0b011 => -3.0,
            0b010 => -1.0,
            0b110 => 1.0,
            0b111 => 3.0,
            0b101 => 5.0,
            _ => 7.0, // 0b100
        },
        _ => unreachable!("axes carry 1..=3 bits"),
    }
}

impl Constellation {
    fn build(modulation: Modulation) -> Self {
        let n_bits = modulation.bits_per_symbol();
        let n_points = 1usize << n_bits;
        // Normalization factors giving unit average symbol energy.
        let scale = match modulation {
            Modulation::Bpsk => 1.0,
            Modulation::Qpsk => 1.0 / 2.0_f64.sqrt(),
            Modulation::Qam16 => 1.0 / 10.0_f64.sqrt(),
            Modulation::Qam64 => 1.0 / 42.0_f64.sqrt(),
        };
        let points = (0..n_points)
            .map(|label| {
                match modulation {
                    // BPSK: single bit on the real axis.
                    Modulation::Bpsk => Complex::new(gray_axis(label, 1) * scale, 0.0),
                    // QPSK/QAM: first half of the bits (LSBs of the label)
                    // select I, second half select Q, per 802.11a.
                    _ => {
                        let half = n_bits / 2;
                        let i_label = label & ((1 << half) - 1);
                        let q_label = label >> half;
                        Complex::new(
                            gray_axis(i_label, half) * scale,
                            gray_axis(q_label, half) * scale,
                        )
                    }
                }
            })
            .collect();
        Constellation { modulation, points }
    }

    /// Returns the shared table for `modulation`.
    pub fn get(modulation: Modulation) -> &'static Constellation {
        static TABLES: OnceLock<[Constellation; 4]> = OnceLock::new();
        let tables = TABLES.get_or_init(|| {
            [
                Constellation::build(Modulation::Bpsk),
                Constellation::build(Modulation::Qpsk),
                Constellation::build(Modulation::Qam16),
                Constellation::build(Modulation::Qam64),
            ]
        });
        match modulation {
            Modulation::Bpsk => &tables[0],
            Modulation::Qpsk => &tables[1],
            Modulation::Qam16 => &tables[2],
            Modulation::Qam64 => &tables[3],
        }
    }

    /// Bits per symbol for this constellation.
    pub fn bits_per_symbol(&self) -> usize {
        self.modulation.bits_per_symbol()
    }

    /// Maps `bits_per_symbol` coded bits (LSB-first into the label) to a
    /// constellation point.
    pub fn map(&self, bits: &[u8]) -> Complex {
        debug_assert_eq!(bits.len(), self.bits_per_symbol());
        let mut label = 0usize;
        for (i, &b) in bits.iter().enumerate() {
            label |= (b as usize & 1) << i;
        }
        self.points[label]
    }
}

/// Maps a coded-bit stream onto constellation symbols. The stream length
/// must be a multiple of `bits_per_symbol`.
pub fn map_bits(bits: &[u8], modulation: Modulation) -> Vec<Complex> {
    let table = Constellation::get(modulation);
    let n = table.bits_per_symbol();
    assert_eq!(
        bits.len() % n,
        0,
        "bit stream not a multiple of bits/symbol"
    );
    bits.chunks(n).map(|chunk| table.map(chunk)).collect()
}

/// Soft demapper flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemapMethod {
    /// Exact log-MAP bit LLRs (log-sum-exp over the constellation). Best
    /// calibrated hints; the default.
    Exact,
    /// Max-log approximation (minimum-distance differences). Slightly
    /// optimistic hints, noticeably faster on QAM64.
    MaxLog,
}

/// Computes per-coded-bit LLRs for a received sample.
///
/// Model: `y = h * x + n`, `n ~ CN(0, n0)`. Appends `bits_per_symbol` LLRs
/// to `out`; positive favours bit 1:
/// `LLR(b_i) = ln P(b_i = 1 | y) / P(b_i = 0 | y)`.
pub fn demap_soft(
    y: Complex,
    h: Complex,
    n0: f64,
    modulation: Modulation,
    method: DemapMethod,
    out: &mut Vec<f64>,
) {
    let table = Constellation::get(modulation);
    let nb = table.bits_per_symbol();
    let inv_n0 = 1.0 / n0.max(1e-12);

    // Log-metric for each constellation point: -|y - h x|^2 / n0.
    let mut metrics = [0.0f64; 64];
    for (label, &x) in table.points.iter().enumerate() {
        metrics[label] = -(y - h * x).norm_sqr() * inv_n0;
    }

    for bit in 0..nb {
        let mut m1 = f64::NEG_INFINITY;
        let mut m0 = f64::NEG_INFINITY;
        for (label, &m) in metrics[..table.points.len()].iter().enumerate() {
            if (label >> bit) & 1 == 1 {
                m1 = match method {
                    DemapMethod::Exact => max_star(m1, m),
                    DemapMethod::MaxLog => m1.max(m),
                };
            } else {
                m0 = match method {
                    DemapMethod::Exact => max_star(m0, m),
                    DemapMethod::MaxLog => m0.max(m),
                };
            }
        }
        out.push(m1 - m0);
    }
}

/// Hard demap: nearest constellation point's bits (LSB-first), appended to
/// `out`. Used by tests and the hard-decision ablation.
pub fn demap_hard(y: Complex, h: Complex, modulation: Modulation, out: &mut Vec<u8>) {
    let table = Constellation::get(modulation);
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (label, &x) in table.points.iter().enumerate() {
        let d = (y - h * x).norm_sqr();
        if d < best_d {
            best_d = d;
            best = label;
        }
    }
    for bit in 0..table.bits_per_symbol() {
        out.push(((best >> bit) & 1) as u8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constellations_have_unit_energy() {
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            let c = Constellation::get(m);
            let e: f64 = c.points.iter().map(|p| p.norm_sqr()).sum::<f64>() / c.points.len() as f64;
            assert!((e - 1.0).abs() < 1e-12, "{m}: energy {e}");
        }
    }

    #[test]
    fn constellation_points_are_distinct() {
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            let c = Constellation::get(m);
            for i in 0..c.points.len() {
                for j in i + 1..c.points.len() {
                    assert!((c.points[i] - c.points[j]).abs() > 1e-9, "{m}: {i} == {j}");
                }
            }
        }
    }

    #[test]
    fn gray_neighbours_differ_by_one_bit_qam16() {
        // Along each axis, adjacent amplitude levels must differ in exactly
        // one label bit (the Gray property that bounds per-symbol-error bit
        // errors).
        let axis_labels = [0b00usize, 0b01, 0b11, 0b10]; // -3,-1,+1,+3
        for w in axis_labels.windows(2) {
            assert_eq!((w[0] ^ w[1]).count_ones(), 1);
        }
    }

    #[test]
    fn map_demap_roundtrip_noiseless() {
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            let nb = m.bits_per_symbol();
            let n_sym = 1usize << nb;
            // Exercise every label.
            let mut bits = Vec::new();
            for label in 0..n_sym {
                for b in 0..nb {
                    bits.push(((label >> b) & 1) as u8);
                }
            }
            let syms = map_bits(&bits, m);
            let mut hard = Vec::new();
            for &s in &syms {
                demap_hard(s, Complex::ONE, m, &mut hard);
            }
            assert_eq!(hard, bits, "{m}");
        }
    }

    #[test]
    fn soft_demap_signs_match_bits_noiseless() {
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            let nb = m.bits_per_symbol();
            for label in 0..(1usize << nb) {
                let bits: Vec<u8> = (0..nb).map(|b| ((label >> b) & 1) as u8).collect();
                let sym = Constellation::get(m).map(&bits);
                let mut llrs = Vec::new();
                demap_soft(sym, Complex::ONE, 0.1, m, DemapMethod::Exact, &mut llrs);
                for (i, (&l, &b)) in llrs.iter().zip(&bits).enumerate() {
                    assert!(
                        (l >= 0.0) == (b == 1),
                        "{m} label {label} bit {i}: llr {l} for bit {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn llr_magnitude_scales_with_snr() {
        let m = Modulation::Qpsk;
        let sym = Constellation::get(m).map(&[1, 0]);
        let mut low = Vec::new();
        let mut high = Vec::new();
        demap_soft(sym, Complex::ONE, 1.0, m, DemapMethod::Exact, &mut low);
        demap_soft(sym, Complex::ONE, 0.01, m, DemapMethod::Exact, &mut high);
        assert!(high[0].abs() > 10.0 * low[0].abs());
    }

    #[test]
    fn channel_rotation_is_compensated() {
        // Demapping with the true (rotated, scaled) channel must recover the
        // same decisions as an identity channel.
        let m = Modulation::Qam16;
        let h = Complex::from_polar(0.7, 1.1);
        let bits = [1u8, 0, 1, 1];
        let sym = Constellation::get(m).map(&bits);
        let y = h * sym;
        let mut hard = Vec::new();
        demap_hard(y, h, m, &mut hard);
        assert_eq!(hard, bits);
    }

    #[test]
    fn maxlog_close_to_exact_at_high_snr() {
        let m = Modulation::Qam64;
        let bits = [0u8, 1, 1, 0, 1, 0];
        let sym = Constellation::get(m).map(&bits);
        let y = sym + Complex::new(0.01, -0.02);
        let mut exact = Vec::new();
        let mut maxlog = Vec::new();
        demap_soft(y, Complex::ONE, 0.01, m, DemapMethod::Exact, &mut exact);
        demap_soft(y, Complex::ONE, 0.01, m, DemapMethod::MaxLog, &mut maxlog);
        for (e, x) in exact.iter().zip(&maxlog) {
            assert!(
                (e - x).abs() / e.abs().max(1.0) < 0.05,
                "exact {e} vs maxlog {x}"
            );
        }
    }

    #[test]
    fn bpsk_llr_matches_closed_form() {
        // For BPSK with h=1: LLR = 4 * Re(y) / n0.
        let n0 = 0.5;
        let y = Complex::new(0.3, 0.7); // imaginary part carries no info
        let mut llrs = Vec::new();
        demap_soft(
            y,
            Complex::ONE,
            n0,
            Modulation::Bpsk,
            DemapMethod::Exact,
            &mut llrs,
        );
        let expected = 4.0 * y.re / n0;
        assert!(
            (llrs[0] - expected).abs() < 1e-9,
            "{} vs {expected}",
            llrs[0]
        );
    }
}
