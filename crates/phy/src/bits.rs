//! Bit-level utilities: byte/bit conversion and a deterministic payload
//! generator used to compute ground-truth BER (the receiver-side experiments
//! check decoded bits against the known transmitted payload, exactly as the
//! paper does in §5.2).

/// Unpacks bytes into bits, LSB first within each byte (802.11 bit ordering).
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<u8> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in 0..8 {
            bits.push((b >> i) & 1);
        }
    }
    bits
}

/// Packs bits (LSB first) into bytes. Trailing bits short of a full byte are
/// packed into a final byte padded with zeros.
pub fn bits_to_bytes(bits: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(bits.len().div_ceil(8));
    for chunk in bits.chunks(8) {
        let mut b = 0u8;
        for (i, &bit) in chunk.iter().enumerate() {
            b |= (bit & 1) << i;
        }
        bytes.push(b);
    }
    bytes
}

/// Counts positions where two equal-length bit slices differ.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn hamming_distance(a: &[u8], b: &[u8]) -> usize {
    assert_eq!(a.len(), b.len(), "hamming_distance on unequal lengths");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Fraction of differing bits between two equal-length bit slices; the
/// ground-truth BER of a reception.
pub fn bit_error_rate(sent: &[u8], received: &[u8]) -> f64 {
    if sent.is_empty() {
        return 0.0;
    }
    hamming_distance(sent, received) as f64 / sent.len() as f64
}

/// Deterministic pseudo-random payload of `len` bytes derived from `seed`.
///
/// Uses a splitmix64 sequence so payload generation needs no external RNG
/// state; the same `(seed, len)` always yields the same payload, letting any
/// component regenerate the ground truth for a frame it knows the seed of.
pub fn deterministic_payload(seed: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    while out.len() < len {
        let mut z = x;
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        for byte in z.to_le_bytes() {
            if out.len() == len {
                break;
            }
            out.push(byte);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_bits_roundtrip() {
        let data = [0x00, 0xFF, 0xA5, 0x3C, 0x01, 0x80];
        let bits = bytes_to_bits(&data);
        assert_eq!(bits.len(), data.len() * 8);
        assert_eq!(bits_to_bytes(&bits), data);
    }

    #[test]
    fn lsb_first_ordering() {
        let bits = bytes_to_bits(&[0b0000_0001]);
        assert_eq!(bits[0], 1);
        assert!(bits[1..].iter().all(|&b| b == 0));
        let bits = bytes_to_bits(&[0b1000_0000]);
        assert_eq!(bits[7], 1);
        assert!(bits[..7].iter().all(|&b| b == 0));
    }

    #[test]
    fn partial_byte_packing_pads_with_zeros() {
        let bits = [1, 0, 1];
        assert_eq!(bits_to_bytes(&bits), vec![0b0000_0101]);
    }

    #[test]
    fn hamming_distance_counts() {
        assert_eq!(hamming_distance(&[0, 1, 0, 1], &[0, 1, 0, 1]), 0);
        assert_eq!(hamming_distance(&[0, 1, 0, 1], &[1, 0, 1, 0]), 4);
        assert_eq!(hamming_distance(&[0, 0, 0, 0], &[0, 0, 0, 1]), 1);
    }

    #[test]
    fn ber_of_empty_is_zero() {
        assert_eq!(bit_error_rate(&[], &[]), 0.0);
    }

    #[test]
    fn ber_counts_fraction() {
        let a = [0u8; 10];
        let mut b = [0u8; 10];
        b[3] = 1;
        b[7] = 1;
        assert!((bit_error_rate(&a, &b) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn deterministic_payload_is_reproducible_and_seed_sensitive() {
        let p1 = deterministic_payload(42, 100);
        let p2 = deterministic_payload(42, 100);
        let p3 = deterministic_payload(43, 100);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        assert_eq!(p1.len(), 100);
    }

    #[test]
    fn deterministic_payload_prefix_property() {
        // Same seed, shorter length must be a prefix of the longer payload,
        // so ground truth can be regenerated for truncated frames.
        let long = deterministic_payload(7, 64);
        let short = deterministic_payload(7, 16);
        assert_eq!(&long[..16], &short[..]);
    }

    #[test]
    fn deterministic_payload_is_balanced() {
        // A pseudo-random payload should be roughly half ones.
        let bits = bytes_to_bits(&deterministic_payload(1, 4096));
        let ones: usize = bits.iter().map(|&b| b as usize).sum();
        let frac = ones as f64 / bits.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "ones fraction {frac}");
    }
}
