//! The 802.11a/g bit-rate table (paper Table 2): combinations of modulation
//! and convolutional code rate, and the raw throughput each achieves over a
//! 20 MHz channel.
//!
//! The paper's prototype implements the six rates from 6 to 36 Mbps; we
//! implement all eight (the two QAM64 rates were marked "future work" in
//! Table 2). Note a typo in the paper's Table 2: it lists QAM64 with code
//! rates 1/2 and 2/3 for 48/54 Mbps, but those throughputs correspond to the
//! standard 802.11a puncturings of 2/3 and 3/4 (48 data subcarriers x 6 bits
//! x 2/3 / 4 us = 48 Mbps). We use the standard, self-consistent mapping.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Subcarrier modulation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Modulation {
    /// Binary phase-shift keying: 1 bit per subcarrier symbol.
    Bpsk,
    /// Quadrature phase-shift keying: 2 bits.
    Qpsk,
    /// 16-point quadrature amplitude modulation: 4 bits.
    Qam16,
    /// 64-point quadrature amplitude modulation: 6 bits.
    Qam64,
}

impl Modulation {
    /// Coded bits carried by one subcarrier symbol (N_bpsc in 802.11 terms).
    pub const fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Number of constellation points.
    pub const fn points(self) -> usize {
        1 << self.bits_per_symbol()
    }

    /// Short human-readable name matching the paper's figures.
    pub const fn name(self) -> &'static str {
        match self {
            Modulation::Bpsk => "BPSK",
            Modulation::Qpsk => "QPSK",
            Modulation::Qam16 => "QAM16",
            Modulation::Qam64 => "QAM64",
        }
    }
}

impl fmt::Display for Modulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Convolutional code rate after puncturing the mother rate-1/2 code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodeRate {
    /// Unpunctured rate 1/2.
    Half,
    /// Punctured rate 2/3.
    TwoThirds,
    /// Punctured rate 3/4.
    ThreeQuarters,
}

impl CodeRate {
    /// Information bits per `denominator()` coded bits.
    pub const fn numerator(self) -> usize {
        match self {
            CodeRate::Half => 1,
            CodeRate::TwoThirds => 2,
            CodeRate::ThreeQuarters => 3,
        }
    }

    /// Coded bits per `numerator()` information bits.
    pub const fn denominator(self) -> usize {
        match self {
            CodeRate::Half => 2,
            CodeRate::TwoThirds => 3,
            CodeRate::ThreeQuarters => 4,
        }
    }

    /// The code rate as a float (e.g. 0.75).
    pub fn as_f64(self) -> f64 {
        self.numerator() as f64 / self.denominator() as f64
    }

    /// Fraction label used in the paper ("1/2", "2/3", "3/4").
    pub const fn label(self) -> &'static str {
        match self {
            CodeRate::Half => "1/2",
            CodeRate::TwoThirds => "2/3",
            CodeRate::ThreeQuarters => "3/4",
        }
    }

    /// The 802.11a puncturing pattern applied to the (A, B) output pair
    /// stream of the rate-1/2 mother code: `true` entries are transmitted,
    /// `false` entries are deleted. The pattern is given per input-bit
    /// period: element `2*i` is output A of step `i`, element `2*i + 1` is
    /// output B of step `i`.
    pub fn puncture_pattern(self) -> &'static [bool] {
        match self {
            // No puncturing.
            CodeRate::Half => &[true, true],
            // 802.11a rate 2/3: transmit A1 B1 A2, delete B2.
            CodeRate::TwoThirds => &[true, true, true, false],
            // 802.11a rate 3/4: transmit A1 B1 A2 B3, delete B2 A3.
            CodeRate::ThreeQuarters => &[true, true, true, false, false, true],
        }
    }
}

impl fmt::Display for CodeRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One entry of the bit-rate table: a modulation / code-rate pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitRate {
    /// Subcarrier modulation.
    pub modulation: Modulation,
    /// Convolutional code rate.
    pub code_rate: CodeRate,
}

impl BitRate {
    /// Creates a bit rate from its components.
    pub const fn new(modulation: Modulation, code_rate: CodeRate) -> Self {
        BitRate {
            modulation,
            code_rate,
        }
    }

    /// Information bits per modulated subcarrier symbol, as a float
    /// (e.g. QAM16 3/4 carries 3 information bits per subcarrier).
    pub fn info_bits_per_subcarrier(self) -> f64 {
        self.modulation.bits_per_symbol() as f64 * self.code_rate.as_f64()
    }

    /// Raw 802.11 throughput in Mbit/s over a 20 MHz channel (paper Table 2):
    /// 48 data subcarriers, 4 us OFDM symbols.
    pub fn mbps(self) -> f64 {
        48.0 * self.info_bits_per_subcarrier() / 4.0
    }

    /// Raw throughput in bit/s over a 20 MHz channel.
    pub fn bits_per_sec(self) -> f64 {
        self.mbps() * 1e6
    }

    /// Label like "QPSK 3/4" as used throughout the paper's figures.
    pub fn label(self) -> String {
        format!("{} {}", self.modulation, self.code_rate)
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.modulation, self.code_rate)
    }
}

/// Index into [`ALL_RATES`]; rate `i + 1` is the next-faster rate than `i`.
pub type RateIdx = usize;

/// The full 802.11a/g rate table in increasing-throughput order
/// (paper Table 2). BER at a given SNR increases monotonically with the
/// index — the ordering SoftRate's prediction heuristic relies on (§3.3).
pub const ALL_RATES: [BitRate; 8] = [
    BitRate::new(Modulation::Bpsk, CodeRate::Half), // 6 Mbps
    BitRate::new(Modulation::Bpsk, CodeRate::ThreeQuarters), // 9 Mbps
    BitRate::new(Modulation::Qpsk, CodeRate::Half), // 12 Mbps
    BitRate::new(Modulation::Qpsk, CodeRate::ThreeQuarters), // 18 Mbps
    BitRate::new(Modulation::Qam16, CodeRate::Half), // 24 Mbps
    BitRate::new(Modulation::Qam16, CodeRate::ThreeQuarters), // 36 Mbps
    BitRate::new(Modulation::Qam64, CodeRate::TwoThirds), // 48 Mbps
    BitRate::new(Modulation::Qam64, CodeRate::ThreeQuarters), // 54 Mbps
];

/// The six rates implemented by the paper's prototype (6..36 Mbps), used by
/// all its experiments. The AP in the ns-3 evaluation "supports the 802.11a/g
/// bit rates from 6 Mbps to 36 Mbps" (§6.1).
pub const PAPER_RATES: &[BitRate] = &[
    ALL_RATES[0],
    ALL_RATES[1],
    ALL_RATES[2],
    ALL_RATES[3],
    ALL_RATES[4],
    ALL_RATES[5],
];

/// Number of rates in [`PAPER_RATES`].
pub const NUM_PAPER_RATES: usize = 6;

/// Looks up the index of `rate` within [`ALL_RATES`].
pub fn rate_index(rate: BitRate) -> Option<RateIdx> {
    ALL_RATES.iter().position(|r| *r == rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_throughputs() {
        // The Mbps column of paper Table 2 (with the QAM64 typo corrected to
        // the self-consistent standard puncturings).
        let expected = [6.0, 9.0, 12.0, 18.0, 24.0, 36.0, 48.0, 54.0];
        for (rate, mbps) in ALL_RATES.iter().zip(expected) {
            assert!(
                (rate.mbps() - mbps).abs() < 1e-9,
                "{rate}: got {} expected {mbps}",
                rate.mbps()
            );
        }
    }

    #[test]
    fn rates_strictly_increasing() {
        for w in ALL_RATES.windows(2) {
            assert!(w[1].mbps() > w[0].mbps());
        }
    }

    #[test]
    fn paper_rates_are_first_six() {
        assert_eq!(PAPER_RATES.len(), NUM_PAPER_RATES);
        assert_eq!(PAPER_RATES[5].label(), "QAM16 3/4");
        assert_eq!(PAPER_RATES[0].label(), "BPSK 1/2");
    }

    #[test]
    fn rate_index_roundtrip() {
        for (i, r) in ALL_RATES.iter().enumerate() {
            assert_eq!(rate_index(*r), Some(i));
        }
    }

    #[test]
    fn puncture_pattern_rates() {
        // Each pattern must keep numerator()*2 of denominator() positions...
        // i.e. out of 2*numerator coded bits, keep denominator.
        for cr in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let p = cr.puncture_pattern();
            assert_eq!(p.len(), 2 * cr.numerator());
            let kept = p.iter().filter(|&&k| k).count();
            assert_eq!(kept, cr.denominator());
        }
    }

    #[test]
    fn modulation_bit_widths() {
        assert_eq!(Modulation::Bpsk.bits_per_symbol(), 1);
        assert_eq!(Modulation::Qpsk.bits_per_symbol(), 2);
        assert_eq!(Modulation::Qam16.bits_per_symbol(), 4);
        assert_eq!(Modulation::Qam64.bits_per_symbol(), 6);
        assert_eq!(Modulation::Qam64.points(), 64);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(ALL_RATES[3].label(), "QPSK 3/4");
        assert_eq!(ALL_RATES[4].label(), "QAM16 1/2");
    }
}
