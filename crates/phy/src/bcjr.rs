//! Soft-output BCJR (log-MAP) decoder for the 802.11 convolutional code.
//!
//! This is the decoder the paper's receiver uses (§4: "decodes it using the
//! soft output BCJR decoder [2], which outputs LLRs that are used to compute
//! the SoftPHY hints"). For each information bit `x_k` it computes the exact
//! a-posteriori log-likelihood ratio
//!
//! ```text
//! LLR(k) = ln P(x_k = 1 | r) / P(x_k = 0 | r)          (paper Eq. 1)
//! ```
//!
//! given per-coded-bit channel LLRs from the soft demapper. The SoftPHY hint
//! for bit `k` is `|LLR(k)|` (paper §3.1).

// Trellis state recursions index `alpha`/`beta` arrays by state number on
// purpose — iterator rewrites obscure the textbook form of the algorithm.
#![allow(clippy::needless_range_loop)]

use crate::convolutional::{NUM_STATES, TAIL_BITS};
use crate::trellis::{max_star, Trellis};

/// Output of a soft decode: hard bit decisions plus the per-bit LLRs they
/// were sliced from.
#[derive(Debug, Clone)]
pub struct SoftDecode {
    /// Hard decisions `y_k` obtained by slicing each LLR at 0 (paper Eq. 2).
    pub bits: Vec<u8>,
    /// A-posteriori LLR per information bit; positive favours 1.
    pub llrs: Vec<f64>,
}

/// BCJR decoder holding its precomputed trellis. Reusable across frames; the
/// per-frame working memory is allocated per call (frames vary in length).
#[derive(Debug, Clone)]
pub struct BcjrDecoder {
    trellis: Trellis,
}

impl BcjrDecoder {
    /// Creates a decoder for the 133/171 rate-1/2 code.
    pub fn new() -> Self {
        BcjrDecoder {
            trellis: Trellis::new(),
        }
    }

    /// Decodes a terminated codeword.
    ///
    /// `coded_llrs` holds one LLR per *mother-code* bit (depunctured; erased
    /// positions carry 0), so its length must be even and equal to
    /// `2 * (n_info + TAIL_BITS)`. Returns LLRs for the `n_info` payload bits
    /// (tail bits are decoded internally but stripped).
    ///
    /// # Panics
    /// Panics if `coded_llrs.len()` is odd or shorter than one tail.
    pub fn decode(&self, coded_llrs: &[f64]) -> SoftDecode {
        assert!(
            coded_llrs.len().is_multiple_of(2),
            "coded LLR stream must be even-length"
        );
        let steps = coded_llrs.len() / 2;
        assert!(steps > TAIL_BITS, "codeword shorter than the tail");
        let n_info = steps - TAIL_BITS;

        let t = &self.trellis;
        const NEG: f64 = f64::NEG_INFINITY;

        // Branch metric for emitting (a, b) at step k:
        //   gamma = 0.5 * ((2a-1) * L_a + (2b-1) * L_b)
        let gamma = |k: usize, out_a: u8, out_b: u8| -> f64 {
            let la = coded_llrs[2 * k];
            let lb = coded_llrs[2 * k + 1];
            0.5 * ((2.0 * out_a as f64 - 1.0) * la + (2.0 * out_b as f64 - 1.0) * lb)
        };

        // Forward recursion. alpha[k][s] = log P(state s at step k, r_0..k-1).
        let mut alpha = vec![[NEG; NUM_STATES]; steps + 1];
        alpha[0][0] = 0.0; // trellis starts in state 0
        for k in 0..steps {
            let mut best = NEG;
            for s in 0..NUM_STATES {
                let a = alpha[k][s];
                if a == NEG {
                    continue;
                }
                for tr in &t.forward[s] {
                    let m = a + gamma(k, tr.out_a, tr.out_b);
                    let cell = &mut alpha[k + 1][tr.to];
                    *cell = max_star(*cell, m);
                }
            }
            // Normalize to prevent drift on long frames.
            for s in 0..NUM_STATES {
                if alpha[k + 1][s] > best {
                    best = alpha[k + 1][s];
                }
            }
            if best != NEG {
                for s in 0..NUM_STATES {
                    alpha[k + 1][s] -= best;
                }
            }
        }

        // Backward recursion. Tail bits force termination in state 0.
        let mut beta = vec![[NEG; NUM_STATES]; steps + 1];
        beta[steps][0] = 0.0;
        for k in (0..steps).rev() {
            let mut best = NEG;
            for s in 0..NUM_STATES {
                let mut acc = NEG;
                for tr in &t.forward[s] {
                    let b = beta[k + 1][tr.to];
                    if b == NEG {
                        continue;
                    }
                    acc = max_star(acc, b + gamma(k, tr.out_a, tr.out_b));
                }
                beta[k][s] = acc;
                if acc > best {
                    best = acc;
                }
            }
            if best != NEG {
                for s in 0..NUM_STATES {
                    beta[k][s] -= best;
                }
            }
        }

        // A-posteriori LLR per information bit.
        let mut llrs = Vec::with_capacity(n_info);
        let mut bits = Vec::with_capacity(n_info);
        for k in 0..n_info {
            let mut num = NEG; // input bit 1
            let mut den = NEG; // input bit 0
            for s in 0..NUM_STATES {
                let a = alpha[k][s];
                if a == NEG {
                    continue;
                }
                for tr in &t.forward[s] {
                    let b = beta[k + 1][tr.to];
                    if b == NEG {
                        continue;
                    }
                    let m = a + gamma(k, tr.out_a, tr.out_b) + b;
                    if tr.input == 1 {
                        num = max_star(num, m);
                    } else {
                        den = max_star(den, m);
                    }
                }
            }
            let llr = num - den;
            bits.push(if llr >= 0.0 { 1 } else { 0 });
            llrs.push(llr);
        }

        SoftDecode { bits, llrs }
    }
}

impl Default for BcjrDecoder {
    fn default() -> Self {
        BcjrDecoder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::{bytes_to_bits, deterministic_payload};
    use crate::convolutional::encode;

    /// Maps coded bits to ideal channel LLRs of magnitude `mag`.
    fn ideal_llrs(coded: &[u8], mag: f64) -> Vec<f64> {
        coded
            .iter()
            .map(|&b| if b == 1 { mag } else { -mag })
            .collect()
    }

    #[test]
    fn decodes_clean_codeword() {
        let info = bytes_to_bits(&deterministic_payload(1, 16));
        let coded = encode(&info);
        let out = BcjrDecoder::new().decode(&ideal_llrs(&coded, 8.0));
        assert_eq!(out.bits, info);
    }

    #[test]
    fn clean_codeword_has_confident_llrs() {
        let info = bytes_to_bits(&deterministic_payload(2, 8));
        let coded = encode(&info);
        let out = BcjrDecoder::new().decode(&ideal_llrs(&coded, 8.0));
        for (k, &l) in out.llrs.iter().enumerate() {
            assert!(l.abs() > 10.0, "bit {k} llr {l} not confident");
            let bit = if l >= 0.0 { 1 } else { 0 };
            assert_eq!(bit, info[k]);
        }
    }

    #[test]
    fn llr_sign_matches_transmitted_bit() {
        let info = bytes_to_bits(&deterministic_payload(3, 32));
        let coded = encode(&info);
        let out = BcjrDecoder::new().decode(&ideal_llrs(&coded, 4.0));
        for (k, &l) in out.llrs.iter().enumerate() {
            assert_eq!(if l >= 0.0 { 1 } else { 0 }, info[k], "bit {k}");
        }
    }

    #[test]
    fn corrects_sparse_errors() {
        // Free distance 10: a couple of isolated channel flips must be
        // corrected.
        let info = bytes_to_bits(&deterministic_payload(4, 24));
        let mut coded = encode(&info);
        coded[10] ^= 1;
        coded[97] ^= 1;
        coded[251] ^= 1;
        let out = BcjrDecoder::new().decode(&ideal_llrs(&coded, 3.0));
        assert_eq!(out.bits, info);
    }

    #[test]
    fn erased_positions_still_decodable() {
        // Zeroing scattered LLRs (as depuncturing does) must not break
        // decoding of an otherwise clean stream.
        let info = bytes_to_bits(&deterministic_payload(5, 24));
        let coded = encode(&info);
        let mut llrs = ideal_llrs(&coded, 5.0);
        for i in (0..llrs.len()).step_by(4) {
            llrs[i] = 0.0;
        }
        let out = BcjrDecoder::new().decode(&llrs);
        assert_eq!(out.bits, info);
    }

    #[test]
    fn weak_channel_yields_weak_hints() {
        // With tiny channel LLRs the posterior must be less confident than
        // with strong ones: mean |LLR| should scale down.
        let info = bytes_to_bits(&deterministic_payload(6, 32));
        let coded = encode(&info);
        let strong = BcjrDecoder::new().decode(&ideal_llrs(&coded, 8.0));
        let weak = BcjrDecoder::new().decode(&ideal_llrs(&coded, 0.5));
        let mean = |v: &[f64]| v.iter().map(|x| x.abs()).sum::<f64>() / v.len() as f64;
        assert!(mean(&weak.llrs) < mean(&strong.llrs) / 2.0);
    }

    #[test]
    #[should_panic(expected = "even-length")]
    fn odd_length_panics() {
        BcjrDecoder::new().decode(&[0.0; 15]);
    }

    #[test]
    fn all_zero_llrs_give_zeroish_output() {
        // No channel information at all: posteriors must be (close to)
        // uninformative. (Termination slightly biases the tail region.)
        let n_info = 20;
        let llrs = vec![0.0; 2 * (n_info + TAIL_BITS)];
        let out = BcjrDecoder::new().decode(&llrs);
        assert_eq!(out.llrs.len(), n_info);
        for &l in &out.llrs {
            assert!(l.abs() < 1.0, "llr {l} should be near zero");
        }
    }
}
