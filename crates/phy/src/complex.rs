//! Minimal complex arithmetic for baseband signal processing.
//!
//! The PHY operates on complex baseband samples (one per OFDM subcarrier per
//! symbol). We implement the small slice of complex math we need rather than
//! pulling in an external numerics crate; everything is `f64` for numerical
//! headroom in the log-domain decoder.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real (in-phase) component.
    pub re: f64,
    /// Imaginary (quadrature) component.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a complex number from polar coordinates (magnitude, phase in
    /// radians).
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{i theta}`: a unit-magnitude complex number at phase `theta`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|^2` (avoids the square root of [`Self::abs`]).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Phase angle in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

/// Mean power (`|z|^2` averaged) of a slice of samples.
pub fn mean_power(samples: &[Complex]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|s| s.norm_sqr()).sum::<f64>() / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.5, 4.0);
        let c = a + b - b;
        assert!(close(c.re, a.re) && close(c.im, a.im));
    }

    #[test]
    fn mul_matches_polar() {
        let a = Complex::from_polar(2.0, 0.3);
        let b = Complex::from_polar(3.0, -1.1);
        let p = a * b;
        assert!(close(p.abs(), 6.0));
        assert!(close(p.arg(), 0.3 - 1.1));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(3.0, -4.0);
        let b = Complex::new(-1.0, 2.0);
        let q = (a * b) / b;
        assert!(close(q.re, a.re) && close(q.im, a.im));
    }

    #[test]
    fn conjugate_norm() {
        let a = Complex::new(3.0, 4.0);
        assert!(close((a * a.conj()).re, 25.0));
        assert!(close((a * a.conj()).im, 0.0));
        assert!(close(a.abs(), 5.0));
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let z = Complex::cis(k as f64 * 0.7);
            assert!(close(z.abs(), 1.0));
        }
    }

    #[test]
    fn mean_power_of_unit_circle() {
        let v: Vec<Complex> = (0..100).map(|k| Complex::cis(k as f64)).collect();
        assert!(close(mean_power(&v), 1.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", Complex::new(1.0, -1.0)), "1.000000-1.000000i");
        assert_eq!(format!("{}", Complex::new(1.0, 1.0)), "1.000000+1.000000i");
    }

    #[test]
    fn sum_of_symmetric_points_is_zero() {
        let v = [Complex::new(1.0, 2.0), Complex::new(-1.0, -2.0)];
        let s: Complex = v.into_iter().sum();
        assert!(close(s.re, 0.0) && close(s.im, 0.0));
    }
}
