//! The 802.11a per-OFDM-symbol block interleaver.
//!
//! Coded bits within one OFDM symbol are interleaved so that adjacent coded
//! bits land on non-adjacent subcarriers (first permutation) and alternate
//! between high- and low-reliability constellation bit positions (second
//! permutation). The paper relies on this (§4): frequency-selective fading
//! corrupts a few subcarriers across *all* symbols, while a collision
//! corrupts *all* subcarriers in a few symbols — which is what makes the
//! per-symbol BER jump a reliable collision signature.

/// Block interleaver for one OFDM symbol of `ncbps` coded bits carrying
/// `nbpsc` bits per subcarrier.
#[derive(Debug, Clone)]
pub struct Interleaver {
    ncbps: usize,
    /// `perm[k]` = output position of input bit `k`.
    perm: Vec<usize>,
    /// `inv[j]` = input position that lands at output `j`.
    inv: Vec<usize>,
}

impl Interleaver {
    /// Builds the interleaver for a symbol of `ncbps` coded bits at `nbpsc`
    /// bits per subcarrier. `ncbps` must be a multiple of 16 (true for all
    /// modes in this crate, as in 802.11a).
    pub fn new(ncbps: usize, nbpsc: usize) -> Self {
        assert!(ncbps.is_multiple_of(16), "Ncbps must be a multiple of 16");
        assert!(ncbps.is_multiple_of(nbpsc));
        let s = (nbpsc / 2).max(1);
        let mut perm = vec![0usize; ncbps];
        #[allow(clippy::needless_range_loop)] // `k` feeds the permutation algebra
        for k in 0..ncbps {
            // First permutation: write row-wise into 16 columns, read
            // column-wise.
            let i = (ncbps / 16) * (k % 16) + k / 16;
            // Second permutation: rotate within groups of s so adjacent
            // coded bits map alternately onto more/less significant
            // constellation bits.
            let j = s * (i / s) + (i + ncbps - (16 * i) / ncbps) % s;
            perm[k] = j;
        }
        let mut inv = vec![0usize; ncbps];
        for (k, &j) in perm.iter().enumerate() {
            inv[j] = k;
        }
        Interleaver { ncbps, perm, inv }
    }

    /// Coded bits per symbol this interleaver was built for.
    pub fn ncbps(&self) -> usize {
        self.ncbps
    }

    /// Interleaves one symbol's worth of coded bits.
    pub fn interleave(&self, bits: &[u8]) -> Vec<u8> {
        assert_eq!(bits.len(), self.ncbps);
        let mut out = vec![0u8; self.ncbps];
        for (k, &b) in bits.iter().enumerate() {
            out[self.perm[k]] = b;
        }
        out
    }

    /// Deinterleaves one symbol's worth of per-bit LLRs (receiver side).
    pub fn deinterleave_llrs(&self, llrs: &[f64]) -> Vec<f64> {
        assert_eq!(llrs.len(), self.ncbps);
        let mut out = vec![0.0f64; self.ncbps];
        for (j, &l) in llrs.iter().enumerate() {
            out[self.inv[j]] = l;
        }
        out
    }

    /// Deinterleaves hard bits (used in tests).
    pub fn deinterleave_bits(&self, bits: &[u8]) -> Vec<u8> {
        assert_eq!(bits.len(), self.ncbps);
        let mut out = vec![0u8; self.ncbps];
        for (j, &b) in bits.iter().enumerate() {
            out[self.inv[j]] = b;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::{bytes_to_bits, deterministic_payload};

    #[test]
    fn permutation_is_bijective() {
        for (ncbps, nbpsc) in [(96, 1), (192, 2), (384, 4), (576, 6), (768, 2)] {
            let il = Interleaver::new(ncbps, nbpsc);
            let mut seen = vec![false; ncbps];
            for &j in &il.perm {
                assert!(j < ncbps);
                assert!(!seen[j], "collision at {j} for ncbps={ncbps}");
                seen[j] = true;
            }
        }
    }

    #[test]
    fn interleave_deinterleave_roundtrip() {
        let il = Interleaver::new(192, 2);
        let bits = bytes_to_bits(&deterministic_payload(1, 24));
        let inter = il.interleave(&bits);
        assert_ne!(inter, bits, "interleaver must actually move bits");
        assert_eq!(il.deinterleave_bits(&inter), bits);
    }

    #[test]
    fn llr_deinterleave_matches_bit_deinterleave() {
        let il = Interleaver::new(96, 1);
        let bits = bytes_to_bits(&deterministic_payload(2, 12));
        let inter = il.interleave(&bits);
        let llrs: Vec<f64> = inter
            .iter()
            .map(|&b| if b == 1 { 1.0 } else { -1.0 })
            .collect();
        let de = il.deinterleave_llrs(&llrs);
        for (l, &b) in de.iter().zip(&bits) {
            assert_eq!(*l > 0.0, b == 1);
        }
    }

    #[test]
    fn adjacent_bits_spread_across_subcarriers() {
        // The defining property: adjacent coded bits must never land on the
        // same or adjacent subcarriers.
        let nbpsc = 4;
        let il = Interleaver::new(384, nbpsc);
        for k in 0..383 {
            let sc_a = il.perm[k] / nbpsc;
            let sc_b = il.perm[k + 1] / nbpsc;
            let dist = sc_a.abs_diff(sc_b);
            assert!(
                dist >= 2,
                "bits {k},{} land on subcarriers {sc_a},{sc_b}",
                k + 1
            );
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn rejects_bad_ncbps() {
        Interleaver::new(90, 1);
    }
}
