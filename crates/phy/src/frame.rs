//! Frame assembly and reception: the complete transmit and receive chains.
//!
//! Transmit: link-layer header (always at the base rate, protected by its
//! own CRC-16 so feedback can identify sender/receiver even when the payload
//! is corrupt — paper §3) and payload (+CRC-32) are separately convolutionally
//! encoded, punctured, interleaved per OFDM symbol and mapped onto data
//! subcarriers, with known pilots for per-symbol channel tracking, two
//! repeated preamble symbols in front and an optional postamble behind.
//!
//! Receive: estimate channel and noise from the preamble (start-of-frame SNR,
//! [`crate::snr`]), decode the header, then demap + BCJR-decode the payload,
//! producing both hard bits and the per-bit LLRs that become SoftPHY hints.

use serde::{Deserialize, Serialize};

use crate::bcjr::BcjrDecoder;
use crate::bits::{bits_to_bytes, bytes_to_bits};
use crate::complex::Complex;
use crate::convolutional::{coded_len, depuncture, encode, puncture};
use crate::crc::{append_crc32, check_crc32, crc16};
use crate::interleaver::Interleaver;
use crate::modulation::{demap_soft, map_bits, DemapMethod};
use crate::ofdm::Mode;
use crate::rates::{BitRate, CodeRate, Modulation, ALL_RATES};
use crate::snr::{
    estimate_channel, postamble_symbol, preamble_symbol, ChannelEstimate, NUM_POSTAMBLE_SYMBOLS,
    NUM_PREAMBLE_SYMBOLS,
};

/// The rate every link-layer header (and feedback frame) is sent at: the
/// lowest, most robust rate, like 802.11 control frames.
pub const HEADER_RATE: BitRate = BitRate::new(Modulation::Bpsk, CodeRate::Half);

/// Serialized header size: 11 content bytes + CRC-16.
pub const HEADER_BYTES: usize = 13;

/// Header bits fed to the convolutional encoder.
pub const HEADER_BITS: usize = HEADER_BYTES * 8;

/// Default demapper LLR clip. Bounds the confidence any single channel
/// observation can claim; keeps the decoder numerically sane under strong
/// interference (real receivers saturate the same way through AGC and
/// fixed-point LLR width).
pub const DEFAULT_LLR_CLIP: f64 = 30.0;

/// Flag bit: frame carries a postamble.
pub const FLAG_POSTAMBLE: u8 = 0b0000_0001;
/// Flag bit: frame is a link-layer feedback (ACK) frame.
pub const FLAG_FEEDBACK: u8 = 0b0000_0010;

/// Link-layer frame header. Protected by its own CRC-16 (paper §3: "to
/// correctly determine the identities of the sender and receiver even when
/// the frame has an error, link-layer headers are protected with a separate
/// CRC").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameHeader {
    /// Sender link-layer address.
    pub src: u16,
    /// Receiver link-layer address.
    pub dst: u16,
    /// Index of the payload bit rate within [`ALL_RATES`].
    pub rate_idx: u8,
    /// Payload length in bytes (before the CRC-32 is appended).
    pub payload_len: u16,
    /// Link-layer sequence number.
    pub seq: u16,
    /// Flag bits ([`FLAG_POSTAMBLE`], [`FLAG_FEEDBACK`]).
    pub flags: u8,
}

impl FrameHeader {
    /// Serializes to [`HEADER_BYTES`] bytes including the CRC-16.
    pub fn to_bytes(&self) -> [u8; HEADER_BYTES] {
        let mut out = [0u8; HEADER_BYTES];
        out[0..2].copy_from_slice(&self.src.to_le_bytes());
        out[2..4].copy_from_slice(&self.dst.to_le_bytes());
        out[4] = self.rate_idx;
        out[5..7].copy_from_slice(&self.payload_len.to_le_bytes());
        out[7..9].copy_from_slice(&self.seq.to_le_bytes());
        out[9] = self.flags;
        out[10] = 0; // reserved
        let c = crc16(&out[..11]);
        out[11..13].copy_from_slice(&c.to_le_bytes());
        out
    }

    /// Parses and CRC-checks a received header. `None` on CRC mismatch or
    /// invalid rate index.
    pub fn from_bytes(bytes: &[u8]) -> Option<FrameHeader> {
        if bytes.len() != HEADER_BYTES {
            return None;
        }
        let c = u16::from_le_bytes([bytes[11], bytes[12]]);
        if crc16(&bytes[..11]) != c {
            return None;
        }
        let rate_idx = bytes[4];
        if rate_idx as usize >= ALL_RATES.len() {
            return None;
        }
        Some(FrameHeader {
            src: u16::from_le_bytes([bytes[0], bytes[1]]),
            dst: u16::from_le_bytes([bytes[2], bytes[3]]),
            rate_idx,
            payload_len: u16::from_le_bytes([bytes[5], bytes[6]]),
            seq: u16::from_le_bytes([bytes[7], bytes[8]]),
            flags: bytes[9],
        })
    }

    /// The payload bit rate named by this header.
    pub fn rate(&self) -> BitRate {
        ALL_RATES[self.rate_idx as usize]
    }
}

/// Per-frame transmit/receive configuration.
#[derive(Debug, Clone, Copy)]
pub struct FrameConfig {
    /// OFDM operating mode.
    pub mode: Mode,
    /// Payload bit rate.
    pub rate: BitRate,
    /// Whether to append a postamble symbol.
    pub postamble: bool,
    /// Soft demapper flavour.
    pub demap: DemapMethod,
    /// Demapper LLR clip magnitude.
    pub llr_clip: f64,
}

impl FrameConfig {
    /// Config with the defaults used throughout the paper reproduction.
    pub fn new(mode: Mode, rate: BitRate) -> Self {
        FrameConfig {
            mode,
            rate,
            postamble: false,
            demap: DemapMethod::Exact,
            llr_clip: DEFAULT_LLR_CLIP,
        }
    }
}

/// A frame ready for the channel: one complex vector per OFDM symbol
/// (length [`Mode::n_used`]).
#[derive(Debug, Clone)]
pub struct TxFrame {
    /// All OFDM symbols: preamble, header, payload, optional postamble.
    pub symbols: Vec<Vec<Complex>>,
    /// The link-layer header carried.
    pub header: FrameHeader,
    /// Payload bit rate.
    pub rate: BitRate,
    /// OFDM mode.
    pub mode: Mode,
    /// Ground-truth information bits (payload bytes + CRC-32), the encoder
    /// input — what experiments compare decodes against.
    pub info_bits: Vec<u8>,
    /// Number of header OFDM symbols.
    pub n_header_symbols: usize,
    /// Number of payload OFDM symbols.
    pub n_payload_symbols: usize,
    /// Whether a postamble symbol is appended.
    pub postamble: bool,
}

impl TxFrame {
    /// Total OFDM symbols including preamble/postamble.
    pub fn n_symbols(&self) -> usize {
        self.symbols.len()
    }

    /// On-air duration in seconds.
    pub fn airtime(&self) -> f64 {
        self.mode.airtime(self.n_symbols())
    }

    /// Index of the first payload symbol within `symbols`.
    pub fn payload_start(&self) -> usize {
        NUM_PREAMBLE_SYMBOLS + self.n_header_symbols
    }
}

/// Result of attempting to receive a frame.
#[derive(Debug, Clone)]
pub struct RxFrame {
    /// Preamble channel estimate (includes noise floor).
    pub est: ChannelEstimate,
    /// Preamble SNR estimate in dB — what an SNR-based protocol feeds back.
    pub snr_db: f64,
    /// Decoded header, if its CRC-16 verified.
    pub header: Option<FrameHeader>,
    /// Decoded information bits (payload + CRC-32 region). Empty when the
    /// header failed.
    pub info_bits: Vec<u8>,
    /// A-posteriori LLR per information bit — the SoftPHY hint source.
    pub llrs: Vec<f64>,
    /// CRC-verified payload bytes, if the frame was received intact.
    pub payload: Option<Vec<u8>>,
    /// Whether the payload CRC-32 verified.
    pub crc_ok: bool,
    /// Information bits per OFDM symbol (N_dbps) at the payload rate — the
    /// grouping unit for the paper's Eq. 4 per-symbol BER aggregation.
    pub info_bits_per_symbol: usize,
}

/// Number of header OFDM symbols in `mode`.
pub fn header_symbol_count(mode: &Mode) -> usize {
    let coded = coded_len(HEADER_BITS, HEADER_RATE.code_rate);
    coded.div_ceil(mode.coded_bits_per_symbol(HEADER_RATE))
}

/// Number of payload OFDM symbols for `payload_len` bytes at `rate`.
pub fn payload_symbol_count(mode: &Mode, rate: BitRate, payload_len: usize) -> usize {
    let n_info = (payload_len + 4) * 8; // + CRC-32
    let coded = coded_len(n_info, rate.code_rate);
    coded.div_ceil(mode.coded_bits_per_symbol(rate))
}

/// Total OFDM symbols of a frame (preamble + header + payload
/// [+ postamble]).
pub fn frame_symbol_count(
    mode: &Mode,
    rate: BitRate,
    payload_len: usize,
    postamble: bool,
) -> usize {
    NUM_PREAMBLE_SYMBOLS
        + header_symbol_count(mode)
        + payload_symbol_count(mode, rate, payload_len)
        + if postamble { NUM_POSTAMBLE_SYMBOLS } else { 0 }
}

/// On-air frame duration in seconds.
pub fn frame_airtime_secs(mode: &Mode, rate: BitRate, payload_len: usize, postamble: bool) -> f64 {
    mode.airtime(frame_symbol_count(mode, rate, payload_len, postamble))
}

/// Deterministic filler bit for coded-stream padding at position `i`.
#[inline]
fn pad_bit(i: usize) -> u8 {
    (i & 1) as u8
}

/// Encodes `info_bits` at `rate` and maps them onto OFDM symbols, starting
/// at global symbol index `sym_offset` (for pilot polarity).
fn encode_block(
    info_bits: &[u8],
    rate: BitRate,
    mode: &Mode,
    sym_offset: usize,
) -> Vec<Vec<Complex>> {
    let coded = puncture(&encode(info_bits), rate.code_rate);
    let ncbps = mode.coded_bits_per_symbol(rate);
    let n_sym = coded.len().div_ceil(ncbps);
    let interleaver = Interleaver::new(ncbps, rate.modulation.bits_per_symbol());
    let data_idx = mode.data_indices();
    let pilot_idx = mode.pilot_indices();

    let mut symbols = Vec::with_capacity(n_sym);
    for s in 0..n_sym {
        let mut sym_bits = Vec::with_capacity(ncbps);
        for i in 0..ncbps {
            let pos = s * ncbps + i;
            sym_bits.push(if pos < coded.len() {
                coded[pos]
            } else {
                pad_bit(pos)
            });
        }
        let interleaved = interleaver.interleave(&sym_bits);
        let points = map_bits(&interleaved, rate.modulation);
        debug_assert_eq!(points.len(), mode.n_data);

        let mut sym = vec![Complex::ZERO; mode.n_used()];
        for (p, &idx) in points.iter().zip(&data_idx) {
            sym[idx] = *p;
        }
        for (pi, &idx) in pilot_idx.iter().enumerate() {
            sym[idx] = Complex::new(mode.pilot_value(sym_offset + s, pi), 0.0);
        }
        symbols.push(sym);
    }
    symbols
}

/// Builds a complete transmit frame.
///
/// The `rate_idx`, `payload_len` and postamble flag in the header are set
/// from `cfg` and `payload` (callers fill in addressing/seq/feedback flags).
pub fn build_frame(mut header: FrameHeader, payload: &[u8], cfg: &FrameConfig) -> TxFrame {
    assert!(payload.len() <= u16::MAX as usize - 4, "payload too long");
    let mode = &cfg.mode;

    header.rate_idx = crate::rates::rate_index(cfg.rate).expect("rate not in table") as u8;
    header.payload_len = payload.len() as u16;
    if cfg.postamble {
        header.flags |= FLAG_POSTAMBLE;
    } else {
        header.flags &= !FLAG_POSTAMBLE;
    }

    let mut symbols = Vec::new();
    // Preamble: two identical training symbols.
    for _ in 0..NUM_PREAMBLE_SYMBOLS {
        symbols.push(preamble_symbol(mode));
    }

    // Header block at the base rate.
    let header_bits = bytes_to_bits(&header.to_bytes());
    let hdr_syms = encode_block(&header_bits, HEADER_RATE, mode, symbols.len());
    let n_header_symbols = hdr_syms.len();
    symbols.extend(hdr_syms);

    // Payload block at the selected rate (payload + CRC-32).
    let mut payload_with_crc = payload.to_vec();
    append_crc32(&mut payload_with_crc);
    let info_bits = bytes_to_bits(&payload_with_crc);
    let pay_syms = encode_block(&info_bits, cfg.rate, mode, symbols.len());
    let n_payload_symbols = pay_syms.len();
    symbols.extend(pay_syms);

    if cfg.postamble {
        symbols.push(postamble_symbol(mode));
    }

    TxFrame {
        symbols,
        header,
        rate: cfg.rate,
        mode: *mode,
        info_bits,
        n_header_symbols,
        n_payload_symbols,
        postamble: cfg.postamble,
    }
}

/// Per-symbol scalar channel correction from the pilots: tracks the common
/// gain/phase drift of the channel across the frame body relative to the
/// preamble estimate.
fn pilot_correction(
    sym: &[Complex],
    est: &ChannelEstimate,
    mode: &Mode,
    global_sym_idx: usize,
) -> Complex {
    let mut num = Complex::ZERO;
    let mut den = 0.0;
    for (pi, &idx) in mode.pilot_indices().iter().enumerate() {
        let x = mode.pilot_value(global_sym_idx, pi);
        let hx = est.h[idx].scale(x);
        num += sym[idx] * hx.conj();
        den += hx.norm_sqr();
    }
    if den < 1e-12 {
        Complex::ONE
    } else {
        num / den
    }
}

/// Demaps a run of OFDM symbols into deinterleaved coded-bit LLRs.
fn demap_block(
    symbols: &[Vec<Complex>],
    est: &ChannelEstimate,
    mode: &Mode,
    modulation: Modulation,
    start_sym_idx: usize,
    demap: DemapMethod,
    llr_clip: f64,
) -> Vec<f64> {
    let ncbps = mode.n_data * modulation.bits_per_symbol();
    let interleaver = Interleaver::new(ncbps, modulation.bits_per_symbol());
    let data_idx = mode.data_indices();
    let mut llrs = Vec::with_capacity(symbols.len() * ncbps);
    let mut sym_llrs = Vec::with_capacity(ncbps);
    for (s, sym) in symbols.iter().enumerate() {
        let c = pilot_correction(sym, est, mode, start_sym_idx + s);
        sym_llrs.clear();
        for &idx in &data_idx {
            let h_eff = est.h[idx] * c;
            demap_soft(
                sym[idx],
                h_eff,
                est.noise_var,
                modulation,
                demap,
                &mut sym_llrs,
            );
        }
        for l in &mut sym_llrs {
            *l = l.clamp(-llr_clip, llr_clip);
        }
        llrs.extend(interleaver.deinterleave_llrs(&sym_llrs));
    }
    llrs
}

/// Attempts to receive a frame from its channel-distorted OFDM symbols.
///
/// `symbols` must contain at least the preamble and header symbols; the
/// payload rate and length are taken from the decoded header (as on a real
/// receiver). Missing payload symbols yield `crc_ok == false`.
pub fn receive_frame(
    symbols: &[Vec<Complex>],
    mode: &Mode,
    demap: DemapMethod,
    llr_clip: f64,
) -> RxFrame {
    let n_hdr = header_symbol_count(mode);
    assert!(
        symbols.len() >= NUM_PREAMBLE_SYMBOLS + n_hdr,
        "caller must supply at least preamble + header symbols"
    );

    // --- Preamble: channel + noise + SNR estimation -----------------------
    let est = estimate_channel(&symbols[0], &symbols[1], mode);
    let snr_db = est.snr_db();
    let decoder = BcjrDecoder::new();

    // --- Header ------------------------------------------------------------
    let hdr_syms = &symbols[NUM_PREAMBLE_SYMBOLS..NUM_PREAMBLE_SYMBOLS + n_hdr];
    let hdr_llrs_all = demap_block(
        hdr_syms,
        &est,
        mode,
        HEADER_RATE.modulation,
        NUM_PREAMBLE_SYMBOLS,
        demap,
        llr_clip,
    );
    let hdr_coded = coded_len(HEADER_BITS, HEADER_RATE.code_rate);
    let hdr_llrs = depuncture(&hdr_llrs_all[..hdr_coded], HEADER_RATE.code_rate, hdr_coded);
    let hdr_decode = decoder.decode(&hdr_llrs);
    let header = FrameHeader::from_bytes(&bits_to_bytes(&hdr_decode.bits));

    let mut rx = RxFrame {
        est,
        snr_db,
        header,
        info_bits: Vec::new(),
        llrs: Vec::new(),
        payload: None,
        crc_ok: false,
        info_bits_per_symbol: 0,
    };

    let Some(hdr) = header else {
        return rx; // cannot locate/decode payload without a header
    };

    // --- Payload -----------------------------------------------------------
    let rate = hdr.rate();
    let n_info = (hdr.payload_len as usize + 4) * 8;
    let coded = coded_len(n_info, rate.code_rate);
    let ncbps = mode.coded_bits_per_symbol(rate);
    let n_pay = coded.div_ceil(ncbps);
    rx.info_bits_per_symbol = mode.data_bits_per_symbol(rate);

    let pay_start = NUM_PREAMBLE_SYMBOLS + n_hdr;
    if symbols.len() < pay_start + n_pay {
        return rx; // truncated capture
    }
    let pay_syms = &symbols[pay_start..pay_start + n_pay];
    let pay_llrs_all = demap_block(
        pay_syms,
        &rx.est,
        mode,
        rate.modulation,
        pay_start,
        demap,
        llr_clip,
    );
    let mother_len = 2 * (n_info + crate::convolutional::TAIL_BITS);
    let pay_llrs = depuncture(&pay_llrs_all[..coded], rate.code_rate, mother_len);
    let decode = decoder.decode(&pay_llrs);

    let bytes = bits_to_bytes(&decode.bits);
    if let Some(payload) = check_crc32(&bytes) {
        rx.payload = Some(payload.to_vec());
        rx.crc_ok = true;
    }
    rx.info_bits = decode.bits;
    rx.llrs = decode.llrs;
    rx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::deterministic_payload;
    use crate::ofdm::{SHORT_RANGE, SIMULATION};
    use crate::rates::PAPER_RATES;

    fn test_header() -> FrameHeader {
        FrameHeader {
            src: 1,
            dst: 2,
            rate_idx: 0,
            payload_len: 0,
            seq: 42,
            flags: 0,
        }
    }

    #[test]
    fn header_roundtrip() {
        let h = FrameHeader {
            src: 7,
            dst: 9,
            rate_idx: 3,
            payload_len: 960,
            seq: 1234,
            flags: 1,
        };
        let parsed = FrameHeader::from_bytes(&h.to_bytes()).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn header_crc_rejects_corruption() {
        let h = test_header();
        let mut bytes = h.to_bytes();
        bytes[4] ^= 0x01;
        assert_eq!(FrameHeader::from_bytes(&bytes), None);
    }

    #[test]
    fn header_rejects_invalid_rate_idx() {
        let mut h = test_header();
        h.rate_idx = 200;
        // to_bytes computes a valid CRC over the bad rate; parsing must
        // still reject it.
        assert_eq!(FrameHeader::from_bytes(&h.to_bytes()), None);
    }

    #[test]
    fn loopback_all_rates_clean_channel() {
        for &rate in PAPER_RATES {
            let cfg = FrameConfig::new(SIMULATION, rate);
            let payload = deterministic_payload(99, 60);
            let tx = build_frame(test_header(), &payload, &cfg);
            let rx = receive_frame(
                &tx.symbols,
                &SIMULATION,
                DemapMethod::Exact,
                DEFAULT_LLR_CLIP,
            );
            assert!(rx.crc_ok, "{rate}: CRC failed on clean channel");
            assert_eq!(rx.payload.as_deref(), Some(&payload[..]), "{rate}");
            assert_eq!(rx.header.unwrap().seq, 42);
            assert_eq!(rx.header.unwrap().rate(), rate);
        }
    }

    #[test]
    fn loopback_short_range_mode() {
        let rate = PAPER_RATES[3];
        let cfg = FrameConfig::new(SHORT_RANGE, rate);
        let payload = deterministic_payload(5, 100);
        let tx = build_frame(test_header(), &payload, &cfg);
        let rx = receive_frame(
            &tx.symbols,
            &SHORT_RANGE,
            DemapMethod::Exact,
            DEFAULT_LLR_CLIP,
        );
        assert!(rx.crc_ok);
        assert_eq!(rx.payload.as_deref(), Some(&payload[..]));
    }

    #[test]
    fn clean_channel_hints_are_confident() {
        let cfg = FrameConfig::new(SIMULATION, PAPER_RATES[4]);
        let payload = deterministic_payload(7, 64);
        let tx = build_frame(test_header(), &payload, &cfg);
        let rx = receive_frame(
            &tx.symbols,
            &SIMULATION,
            DemapMethod::Exact,
            DEFAULT_LLR_CLIP,
        );
        assert_eq!(rx.llrs.len(), tx.info_bits.len());
        // On a noiseless channel every posterior must be confident and
        // correct.
        for (k, (&l, &b)) in rx.llrs.iter().zip(&tx.info_bits).enumerate() {
            assert_eq!(if l >= 0.0 { 1 } else { 0 }, b, "bit {k}");
            assert!(l.abs() > 5.0, "bit {k} llr {l}");
        }
    }

    #[test]
    fn symbol_counts_match_builders() {
        for &rate in PAPER_RATES {
            for len in [1usize, 100, 960, 1400] {
                let cfg = FrameConfig::new(SIMULATION, rate);
                let tx = build_frame(test_header(), &deterministic_payload(1, len), &cfg);
                assert_eq!(
                    tx.n_symbols(),
                    frame_symbol_count(&SIMULATION, rate, len, false),
                    "{rate} len {len}"
                );
                assert_eq!(
                    tx.n_payload_symbols,
                    payload_symbol_count(&SIMULATION, rate, len)
                );
            }
        }
    }

    #[test]
    fn postamble_adds_one_symbol_and_flag() {
        let mut cfg = FrameConfig::new(SIMULATION, PAPER_RATES[0]);
        let without = build_frame(test_header(), &[1, 2, 3], &cfg);
        cfg.postamble = true;
        let with = build_frame(test_header(), &[1, 2, 3], &cfg);
        assert_eq!(with.n_symbols(), without.n_symbols() + 1);
        assert!(with.header.flags & FLAG_POSTAMBLE != 0);
        assert!(without.header.flags & FLAG_POSTAMBLE == 0);
    }

    #[test]
    fn airtime_positive_and_rate_ordered() {
        // Higher rates must need less air time for the same payload.
        let mut times: Vec<f64> = PAPER_RATES
            .iter()
            .map(|&r| frame_airtime_secs(&SIMULATION, r, 1400, false))
            .collect();
        let sorted = {
            let mut t = times.clone();
            t.sort_by(|a, b| b.partial_cmp(a).unwrap());
            t
        };
        assert_eq!(times, sorted, "airtime must decrease with rate: {times:?}");
        assert!(times.pop().unwrap() > 0.0);
    }

    #[test]
    fn truncated_capture_fails_gracefully() {
        let cfg = FrameConfig::new(SIMULATION, PAPER_RATES[5]);
        let tx = build_frame(test_header(), &deterministic_payload(3, 200), &cfg);
        let cut = &tx.symbols[..tx.payload_start() + 1];
        let rx = receive_frame(cut, &SIMULATION, DemapMethod::Exact, DEFAULT_LLR_CLIP);
        assert!(rx.header.is_some(), "header region was intact");
        assert!(!rx.crc_ok);
        assert!(rx.payload.is_none());
    }

    #[test]
    fn ground_truth_bits_match_payload_crc() {
        let cfg = FrameConfig::new(SIMULATION, PAPER_RATES[2]);
        let payload = deterministic_payload(11, 50);
        let tx = build_frame(test_header(), &payload, &cfg);
        assert_eq!(tx.info_bits.len(), (50 + 4) * 8);
        let mut with_crc = payload.clone();
        append_crc32(&mut with_crc);
        assert_eq!(bits_to_bytes(&tx.info_bits), with_crc);
    }
}
