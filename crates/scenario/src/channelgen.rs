//! Turning a [`ChannelSpec`] into the per-link [`LinkTrace`]s the network
//! simulator consumes.
//!
//! Two backends:
//!
//! * **Analytic** — a closed-form SNR→BER map evaluated over the *real*
//!   Jakes fading envelope (`softrate_channel::jakes`) plus the configured
//!   attenuation trajectory and interference duty cycle. All rates at one
//!   time step share the same fading realization, matching the paper's
//!   trace methodology (§6.1), and everything is a pure function of the
//!   seed — fast enough for thousand-run sweeps.
//! * **Phy** — the full software PHY per probe via
//!   [`softrate_trace::generate::run_probe_series`], cached on disk keyed
//!   by the channel parameters (generation is seconds-to-minutes per
//!   trace).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use softrate_channel::jakes::JakesFading;
use softrate_channel::link::{Link, LinkConfig};
use softrate_channel::pathloss::Attenuation;
use softrate_phy::ofdm::SIMULATION;
use softrate_trace::cache::load_or_generate;
use softrate_trace::generate::run_probe_series;
use softrate_trace::recipes::N_RATES;
use softrate_trace::schema::{hash_uniform, LinkTrace, TraceEntry};

use crate::spec::{ChannelModel, ChannelSpec, ScenarioSpec};

// The closed-form SNR→BER map lives in `softrate_channel::analytic` (the
// spatial network layer samples it too); re-exported here for the existing
// callers of this module.
pub use softrate_channel::analytic::{analytic_ber, REQUIRED_SNR_DB};
use softrate_channel::analytic::{DETECT_SNR_DB, HEADER_FAIL_BER};

/// Probe payload bits assumed by the analytic model (100 B + CRC-32).
const PROBE_BITS: usize = 832;

/// Instantaneous SNR of the spec's channel at time `t`, combining the mean
/// SNR, the attenuation trajectory, the Jakes envelope, and any active
/// interference burst.
fn instantaneous_snr_db(channel: &ChannelSpec, fading: Option<&JakesFading>, t: f64) -> f64 {
    let atten = channel.attenuation.unwrap_or(Attenuation::NONE);
    let mut snr = channel.snr_db + atten.db_at(t);
    if let Some(j) = fading {
        // Rayleigh envelope in dB, floored: deep nulls below -40 dB are
        // indistinguishable (nothing decodes either way).
        let g = j.gain(t).norm_sqr().max(1e-4);
        snr += 10.0 * g.log10();
    }
    if let Some(b) = &channel.interference {
        if t.rem_euclid(b.period) < b.burst_len {
            snr -= b.penalty_db;
        }
    }
    snr
}

/// Builds one link's trace under the analytic model.
fn analytic_trace(spec: &ScenarioSpec, name: String, seed: u64) -> LinkTrace {
    let interval = spec.probe_interval();
    let n_steps = (spec.duration / interval).round().max(1.0) as usize;
    // Multipath is rejected by `ScenarioSpec::validate` for this model (the
    // analytic map is frequency-flat); treat it like Flat defensively for
    // direct `build_trace` callers rather than panicking.
    let fading = match spec.channel.fading {
        softrate_channel::model::FadingSpec::None => None,
        softrate_channel::model::FadingSpec::Flat { doppler_hz }
        | softrate_channel::model::FadingSpec::Multipath { doppler_hz, .. } => {
            Some(JakesFading::new(doppler_hz, seed))
        }
    };

    let mut series: Vec<Vec<TraceEntry>> =
        (0..N_RATES).map(|_| Vec::with_capacity(n_steps)).collect();
    for step in 0..n_steps {
        let t = step as f64 * interval;
        let snr = instantaneous_snr_db(&spec.channel, fading.as_ref(), t);
        let detected = snr >= DETECT_SNR_DB;
        for (r, rate_series) in series.iter_mut().enumerate() {
            let ber = analytic_ber(snr, r);
            let mut e = TraceEntry::silent(t, r, snr);
            e.detected = detected;
            if detected {
                // The link-layer header is short and separately protected;
                // it survives anything but catastrophic BER.
                e.header_ok = ber < HEADER_FAIL_BER;
                e.probe_bits = PROBE_BITS;
                if e.header_ok {
                    e.true_ber = Some(ber);
                    e.softphy_ber = Some(ber);
                    e.snr_est_db = Some(snr);
                    let p_probe = (1.0 - ber).powi(PROBE_BITS as i32);
                    e.delivered = hash_uniform(&[seed, step as u64, r as u64, 0xA11A]) < p_probe;
                }
            }
            rate_series.push(e);
        }
    }

    LinkTrace {
        name,
        mode_name: "analytic".to_string(),
        interval,
        duration: spec.duration,
        series,
        seed,
    }
}

/// Process-wide memo of PHY traces: many runs in one matrix share a
/// channel point, and generation takes seconds-to-minutes per trace. The
/// per-key cell makes concurrent workers wanting the *same* trace block on
/// one generation (different keys still generate in parallel), and repeat
/// lookups are free. The disk cache underneath persists across processes.
type PhyMemo = Mutex<HashMap<u64, Arc<OnceLock<Arc<LinkTrace>>>>>;
static PHY_MEMO: OnceLock<PhyMemo> = OnceLock::new();

/// Builds one link's trace by running the full PHY, memoized in-process
/// and cached on disk.
fn phy_trace(spec: &ScenarioSpec, name: String, seed: u64) -> Arc<LinkTrace> {
    let key = channel_cache_key(spec, seed);
    let cell = {
        let memo = PHY_MEMO.get_or_init(Default::default);
        let mut map = memo.lock().expect("phy memo poisoned");
        Arc::clone(map.entry(key).or_default())
    };
    Arc::clone(cell.get_or_init(|| {
        let interval = spec.probe_interval();
        let dir = std::env::var("SOFTRATE_RESULTS").unwrap_or_else(|_| "results".to_string());
        let path = std::path::PathBuf::from(dir).join(format!("traces/scenario-{key:016x}.json"));
        Arc::new(load_or_generate(path, || {
            let mut cfg = LinkConfig::new(SIMULATION);
            cfg.noise_power_db = -spec.channel.snr_db;
            cfg.fading = spec.channel.fading;
            cfg.attenuation = spec.channel.attenuation.unwrap_or(Attenuation::NONE);
            cfg.seed = seed;
            let mut link = Link::new(cfg);
            LinkTrace {
                name,
                mode_name: SIMULATION.name.to_string(),
                interval,
                duration: spec.duration,
                series: run_probe_series(&mut link, spec.duration, interval, 100),
                seed,
            }
        }))
    }))
}

/// Stable cache key over everything that shapes a PHY trace.
fn channel_cache_key(spec: &ScenarioSpec, seed: u64) -> u64 {
    let text = serde_json::to_string(&spec.channel).unwrap_or_default();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(text.as_bytes());
    eat(&spec.duration.to_bits().to_le_bytes());
    eat(&spec.probe_interval().to_bits().to_le_bytes());
    eat(&seed.to_le_bytes());
    h
}

/// Builds the trace for link `link_idx` (0-based over `2 * n_clients`
/// unidirectional links) of one run.
pub fn build_trace(spec: &ScenarioSpec, run_seed: u64, link_idx: usize) -> Arc<LinkTrace> {
    // Distinct fading/noise realization per link, deterministic per run.
    let seed = run_seed ^ (0x11C4_B5E1u64.wrapping_mul(link_idx as u64 + 1));
    let name = format!("{}-link{}", spec.name, link_idx);
    match spec.channel.model {
        ChannelModel::Analytic => Arc::new(analytic_trace(spec, name, seed)),
        ChannelModel::Phy => phy_trace(spec, name, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{
        BurstInterference, ChannelSpec, ScenarioSpec, TopologySpec, TrafficModel, TrafficSpec,
    };
    use softrate_channel::model::FadingSpec;

    fn spec_with(channel: ChannelSpec) -> ScenarioSpec {
        ScenarioSpec {
            name: "t".into(),
            description: None,
            duration: 1.0,
            seed: 5,
            topology: TopologySpec {
                n_clients: Some(1),
                carrier_sense_prob: None,
                queue_cap: None,
                spatial: None,
            },
            channel,
            traffic: TrafficSpec {
                kind: TrafficModel::Tcp,
                direction: None,
            },
            faults: None,
            adapters: None,
            sweep: None,
        }
    }

    fn analytic_channel(snr_db: f64, fading: FadingSpec) -> ChannelSpec {
        ChannelSpec {
            model: ChannelModel::Analytic,
            snr_db,
            fading,
            attenuation: None,
            interference: None,
            probe_interval: None,
        }
    }

    #[test]
    fn ber_curve_is_monotone_and_anchored() {
        #[allow(clippy::needless_range_loop)] // `r` is a rate index into two tables
        for r in 0..N_RATES {
            assert!(analytic_ber(REQUIRED_SNR_DB[r], r) <= 1.0001e-6);
            assert!(analytic_ber(REQUIRED_SNR_DB[r] - 3.0, r) > 1e-3);
            let mut prev = f64::MAX;
            for k in 0..40 {
                let b = analytic_ber(k as f64, r);
                assert!(b <= prev);
                prev = b;
            }
        }
    }

    #[test]
    fn static_analytic_trace_has_expected_oracle() {
        // 13 dB: QAM16 1/2 (idx 4, needs 12.5) is the best guaranteed rate.
        let spec = spec_with(analytic_channel(13.0, FadingSpec::None));
        let tr = build_trace(&spec, 1, 0);
        assert_eq!(tr.n_rates(), N_RATES);
        assert_eq!(tr.n_steps(), 200);
        assert_eq!(tr.best_rate_at(0.5, 1440 * 8), 4);
    }

    #[test]
    fn fading_modulates_the_oracle() {
        let spec = spec_with(analytic_channel(
            16.0,
            FadingSpec::Flat { doppler_hz: 30.0 },
        ));
        let tr = build_trace(&spec, 2, 0);
        let rates: Vec<usize> = (0..tr.n_steps())
            .map(|s| tr.best_rate_at(s as f64 * tr.interval, 11520))
            .collect();
        let min = *rates.iter().min().unwrap();
        let max = *rates.iter().max().unwrap();
        assert!(
            max > min,
            "fading must move the best rate (got constant {min})"
        );
    }

    #[test]
    fn interference_bursts_floor_the_channel() {
        let mut ch = analytic_channel(20.0, FadingSpec::None);
        ch.interference = Some(BurstInterference {
            period: 0.5,
            burst_len: 0.25,
            penalty_db: 30.0,
        });
        let spec = spec_with(ch);
        let tr = build_trace(&spec, 3, 0);
        // Inside a burst: SINR -10 dB -> nothing detected. Outside: clean.
        assert_eq!(tr.best_rate_at(0.1, 11520), 0);
        assert!(!tr.entry(0, 0.1).detected);
        assert!(tr.entry(0, 0.3).detected);
        assert_eq!(tr.best_rate_at(0.3, 11520), 5);
    }

    #[test]
    fn traces_are_deterministic_and_link_distinct() {
        let spec = spec_with(analytic_channel(
            14.0,
            FadingSpec::Flat { doppler_hz: 100.0 },
        ));
        let a = build_trace(&spec, 7, 0);
        let b = build_trace(&spec, 7, 0);
        assert_eq!(a.to_json(), b.to_json());
        let c = build_trace(&spec, 7, 1);
        assert_ne!(
            a.to_json(),
            c.to_json(),
            "links must get distinct realizations"
        );
    }
}
