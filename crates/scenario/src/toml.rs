//! A small TOML front-end over the serde shim's [`Value`] model.
//!
//! Supports the subset scenario specs use: `[table]` and `[[array-of-
//! table]]` headers, dotted and quoted keys, basic strings, integers,
//! floats, booleans, homogeneous arrays (multi-line allowed), and inline
//! tables. The writer emits scalars and arrays-of-scalars as `key = value`
//! lines, nested maps as `[dotted.path]` tables, and arrays of maps as
//! `[[dotted.path]]` blocks — and round-trips everything the parser
//! accepts. `Null` values are skipped on write (TOML has no null), which is
//! how optional spec fields disappear from serialized scenarios.

use serde::Value;

/// TOML parse / serialize error.
#[derive(Debug, Clone)]
pub struct TomlError(String);

impl std::fmt::Display for TomlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for TomlError {}

/// Parses a TOML document into a map-rooted [`Value`].
pub fn parse(text: &str) -> Result<Value, TomlError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut root = Vec::new();
    // Path of the table currently receiving key-values; empty = root.
    let mut current: Vec<String> = Vec::new();
    loop {
        parser.skip_trivia();
        let Some(b) = parser.peek() else { break };
        if b == b'[' {
            parser.pos += 1;
            let is_array = parser.peek() == Some(b'[');
            if is_array {
                parser.pos += 1;
            }
            let path = parser.key_path()?;
            parser.expect(b']')?;
            if is_array {
                parser.expect(b']')?;
            }
            parser.end_of_line()?;
            if is_array {
                push_array_table(&mut root, &path, parser.line)?;
            } else {
                ensure_table(&mut root, &path, parser.line)?;
            }
            current = path;
        } else {
            let path = parser.key_path()?;
            parser.expect(b'=')?;
            parser.skip_inline_ws();
            let value = parser.value()?;
            parser.end_of_line()?;
            let mut full = current.clone();
            full.extend(path);
            insert(&mut root, &full, value, parser.line)?;
        }
    }
    Ok(Value::Map(root))
}

/// Serializes a map-rooted [`Value`] to TOML text.
pub fn to_string(v: &Value) -> Result<String, TomlError> {
    let Value::Map(entries) = v else {
        return Err(TomlError("TOML documents must be maps at top level".into()));
    };
    let mut out = String::new();
    write_table(&mut out, entries, &mut Vec::new());
    Ok(out)
}

// --- writer -----------------------------------------------------------------

fn is_bare_key(k: &str) -> bool {
    !k.is_empty()
        && k.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

fn write_key(out: &mut String, k: &str) {
    if is_bare_key(k) {
        out.push_str(k);
    } else {
        write_basic_string(out, k);
    }
}

fn write_basic_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04X}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A value the writer can place on the right-hand side of `key = ...`.
/// Only non-empty arrays whose elements are *all* maps become
/// `[[table]]` blocks; anything else (including arrays mixing scalars
/// with inline tables, e.g. adapter lists) stays inline.
fn is_inline(v: &Value) -> bool {
    match v {
        Value::Map(_) => false,
        Value::Seq(items) => items.is_empty() || !items.iter().all(|i| matches!(i, Value::Map(_))),
        _ => true,
    }
}

fn write_inline(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("\"\""), // unreachable: nulls are skipped
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_nan() {
                out.push_str("nan");
            } else if f.is_infinite() {
                out.push_str(if *f > 0.0 { "inf" } else { "-inf" });
            } else if f.fract() == 0.0 && f.abs() < 1e15 {
                // Keep floats recognizable as floats on re-parse.
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
        Value::Str(s) => write_basic_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_inline_any(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            let mut first = true;
            for (k, v) in entries {
                if matches!(v, Value::Null) {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                write_key(out, k);
                out.push_str(" = ");
                write_inline_any(out, v);
            }
            out.push('}');
        }
    }
}

/// Inline writer that also accepts maps (as inline tables) — used inside
/// arrays that mix maps with scalars.
fn write_inline_any(out: &mut String, v: &Value) {
    write_inline(out, v);
}

fn write_table(out: &mut String, entries: &[(String, Value)], path: &mut Vec<String>) {
    // Scalar / inline lines first.
    for (k, v) in entries {
        if matches!(v, Value::Null) {
            continue;
        }
        if is_inline(v) {
            write_key(out, k);
            out.push_str(" = ");
            write_inline(out, v);
            out.push('\n');
        }
    }
    // Then sub-tables and arrays of tables.
    for (k, v) in entries {
        match v {
            Value::Map(sub) => {
                path.push(k.clone());
                out.push('\n');
                out.push('[');
                write_path(out, path);
                out.push_str("]\n");
                write_table(out, sub, path);
                path.pop();
            }
            Value::Seq(items) if !is_inline(v) => {
                path.push(k.clone());
                for item in items {
                    let Value::Map(sub) = item else {
                        unreachable!("is_inline admits only all-map arrays here");
                    };
                    out.push('\n');
                    out.push_str("[[");
                    write_path(out, path);
                    out.push_str("]]\n");
                    write_table(out, sub, path);
                }
                path.pop();
            }
            _ => {}
        }
    }
}

fn write_path(out: &mut String, path: &[String]) {
    for (i, seg) in path.iter().enumerate() {
        if i > 0 {
            out.push('.');
        }
        write_key(out, seg);
    }
}

// --- document assembly ------------------------------------------------------

fn get_or_make<'a>(
    map: &'a mut Vec<(String, Value)>,
    key: &str,
    make: impl FnOnce() -> Value,
) -> &'a mut Value {
    if let Some(i) = map.iter().position(|(k, _)| k == key) {
        &mut map[i].1
    } else {
        map.push((key.to_string(), make()));
        let i = map.len() - 1;
        &mut map[i].1
    }
}

/// Descends to (creating as needed) the map at `path`. For an
/// array-of-tables segment the last element of the array is entered.
fn descend<'a>(
    root: &'a mut Vec<(String, Value)>,
    path: &[String],
    line: usize,
) -> Result<&'a mut Vec<(String, Value)>, TomlError> {
    let mut cur = root;
    for seg in path {
        let v = get_or_make(cur, seg, || Value::Map(Vec::new()));
        let next = match v {
            Value::Map(_) => v,
            Value::Seq(items) => items
                .last_mut()
                .ok_or_else(|| TomlError(format!("line {line}: empty table array `{seg}`")))?,
            _ => return Err(TomlError(format!("line {line}: `{seg}` is not a table"))),
        };
        cur = match next {
            Value::Map(m) => m,
            _ => return Err(TomlError(format!("line {line}: `{seg}` is not a table"))),
        };
    }
    Ok(cur)
}

fn ensure_table(
    root: &mut Vec<(String, Value)>,
    path: &[String],
    line: usize,
) -> Result<(), TomlError> {
    descend(root, path, line).map(|_| ())
}

fn push_array_table(
    root: &mut Vec<(String, Value)>,
    path: &[String],
    line: usize,
) -> Result<(), TomlError> {
    let (last, parents) = path
        .split_last()
        .ok_or_else(|| TomlError(format!("line {line}: empty table-array path")))?;
    let parent = descend(root, parents, line)?;
    let v = get_or_make(parent, last, || Value::Seq(Vec::new()));
    match v {
        Value::Seq(items) => {
            items.push(Value::Map(Vec::new()));
            Ok(())
        }
        _ => Err(TomlError(format!(
            "line {line}: `{last}` is not a table array"
        ))),
    }
}

fn insert(
    root: &mut Vec<(String, Value)>,
    path: &[String],
    value: Value,
    line: usize,
) -> Result<(), TomlError> {
    let (last, parents) = path
        .split_last()
        .ok_or_else(|| TomlError(format!("line {line}: empty key")))?;
    let parent = descend(root, parents, line)?;
    if parent.iter().any(|(k, _)| k == last) {
        return Err(TomlError(format!("line {line}: duplicate key `{last}`")));
    }
    parent.push((last.clone(), value));
    Ok(())
}

// --- lexer/parser -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> TomlError {
        TomlError(format!("line {}: {msg}", self.line))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Skips spaces/tabs on the current line.
    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, newlines, and comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r') => self.pos += 1,
                Some(b'\n') => {
                    self.pos += 1;
                    self.line += 1;
                }
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), TomlError> {
        self.skip_inline_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    /// After a value or header: optional comment, then newline or EOF.
    fn end_of_line(&mut self) -> Result<(), TomlError> {
        self.skip_inline_ws();
        if self.peek() == Some(b'#') {
            while !matches!(self.peek(), None | Some(b'\n')) {
                self.pos += 1;
            }
        }
        match self.peek() {
            None => Ok(()),
            Some(b'\n') => {
                self.pos += 1;
                self.line += 1;
                Ok(())
            }
            Some(b'\r') => {
                self.pos += 1;
                self.end_of_line()
            }
            _ => Err(self.err("expected end of line")),
        }
    }

    /// `a.b."quoted c"` key paths.
    fn key_path(&mut self) -> Result<Vec<String>, TomlError> {
        let mut path = Vec::new();
        loop {
            self.skip_inline_ws();
            path.push(self.key_segment()?);
            self.skip_inline_ws();
            if self.peek() == Some(b'.') {
                self.pos += 1;
            } else {
                return Ok(path);
            }
        }
    }

    fn key_segment(&mut self) -> Result<String, TomlError> {
        match self.peek() {
            Some(b'"') => self.basic_string(),
            Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' => {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
            }
            _ => Err(self.err("expected a key")),
        }
    }

    fn basic_string(&mut self) -> Result<String, TomlError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected `\"`"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\n' => return Err(self.err("newline in basic string")),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' | b'U' => {
                            let len = if esc == b'u' { 4 } else { 8 };
                            if self.pos + len > self.bytes.len() {
                                return Err(self.err("truncated unicode escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + len])
                                .map_err(|_| self.err("bad unicode escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad unicode escape"))?;
                            self.pos += len;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<Value, TomlError> {
        self.skip_inline_ws();
        match self.peek() {
            Some(b'"') => self.basic_string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.inline_table(),
            Some(b't') | Some(b'f') => {
                if self.keyword("true") {
                    Ok(Value::Bool(true))
                } else if self.keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("expected a value"))
                }
            }
            Some(b) if b == b'-' || b == b'+' || b.is_ascii_digit() || b == b'i' || b == b'n' => {
                self.number()
            }
            _ => Err(self.err("expected a value")),
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn array(&mut self) -> Result<Value, TomlError> {
        self.pos += 1; // [
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Seq(items));
            }
            items.push(self.value()?);
            self.skip_trivia();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn inline_table(&mut self) -> Result<Value, TomlError> {
        self.pos += 1; // {
        let mut entries = Vec::new();
        self.skip_inline_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_inline_ws();
            let path = self.key_path()?;
            self.expect(b'=')?;
            self.skip_inline_ws();
            let value = self.value()?;
            insert(&mut entries, &path, value, self.line)?;
            self.skip_inline_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, TomlError> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'+' | b'-')) {
            self.pos += 1;
        }
        if self.keyword("inf") {
            let text = &self.bytes[start..self.pos];
            return Ok(Value::Float(if text[0] == b'-' {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            }));
        }
        if self.keyword("nan") {
            return Ok(Value::Float(f64::NAN));
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'_' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'+' | b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text: String = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?
            .chars()
            .filter(|&c| c != '_' && c != '+')
            .collect();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_tables() {
        let doc = parse(
            "name = \"x\"\nn = 3\nf = 1.5\nneg = -2\nok = true\n\n\
             [sub]\na = 1\n\n[sub.deep]\nb = \"y\"\n",
        )
        .unwrap();
        assert_eq!(doc.get("name"), Some(&Value::Str("x".into())));
        assert_eq!(doc.get("n"), Some(&Value::Int(3)));
        assert_eq!(doc.get("f"), Some(&Value::Float(1.5)));
        assert_eq!(doc.get("neg"), Some(&Value::Int(-2)));
        assert_eq!(doc.get("sub").unwrap().get("a"), Some(&Value::Int(1)));
        assert_eq!(
            doc.get("sub").unwrap().get("deep").unwrap().get("b"),
            Some(&Value::Str("y".into()))
        );
    }

    #[test]
    fn arrays_inline_tables_and_comments() {
        let doc = parse(
            "# header\nxs = [1, 2, 3] # trailing\nmix = [\"a\", {k = 1}]\n\
             multi = [\n  1.0,\n  2.0, # c\n]\nt = {a = 1, b = \"s\"}\n",
        )
        .unwrap();
        assert_eq!(
            doc.get("xs"),
            Some(&Value::Seq(vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(3)
            ]))
        );
        assert_eq!(
            doc.get("multi"),
            Some(&Value::Seq(vec![Value::Float(1.0), Value::Float(2.0)]))
        );
        assert_eq!(
            doc.get("t").unwrap().get("b"),
            Some(&Value::Str("s".into()))
        );
        assert_eq!(
            doc.get("mix").unwrap(),
            &Value::Seq(vec![
                Value::Str("a".into()),
                Value::Map(vec![("k".into(), Value::Int(1))]),
            ])
        );
    }

    #[test]
    fn array_of_tables_and_dotted_keys() {
        let doc = parse("[[run]]\nname = \"a\"\n[[run]]\nname = \"b\"\nnested.k = 1\n").unwrap();
        let Value::Seq(runs) = doc.get("run").unwrap() else {
            panic!()
        };
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].get("name"), Some(&Value::Str("a".into())));
        assert_eq!(
            runs[1].get("nested").unwrap().get("k"),
            Some(&Value::Int(1))
        );
    }

    #[test]
    fn quoted_and_dotted_keys() {
        let doc = parse("[sweep]\n\"channel.snr_db\" = [1.0, 2.0]\n").unwrap();
        assert_eq!(
            doc.get("sweep").unwrap().get("channel.snr_db"),
            Some(&Value::Seq(vec![Value::Float(1.0), Value::Float(2.0)]))
        );
    }

    #[test]
    fn roundtrip() {
        let text = "name = \"demo\"\nxs = [1, 2]\n\n[sub]\na = 1.5\nflag = true\n\n\
                    [[runs]]\nid = 1\n\n[[runs]]\nid = 2\n";
        let doc = parse(text).unwrap();
        let emitted = to_string(&doc).unwrap();
        let reparsed = parse(&emitted).unwrap();
        assert_eq!(doc, reparsed, "emitted TOML:\n{emitted}");
    }

    #[test]
    fn floats_stay_floats_across_roundtrip() {
        let doc = Value::Map(vec![("x".into(), Value::Float(3.0))]);
        let text = to_string(&doc).unwrap();
        assert!(text.contains("3.0"), "{text}");
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn null_fields_are_skipped() {
        let doc = Value::Map(vec![("a".into(), Value::Null), ("b".into(), Value::Int(1))]);
        let text = to_string(&doc).unwrap();
        assert!(!text.contains('a'), "{text}");
        assert_eq!(parse(&text).unwrap().get("b"), Some(&Value::Int(1)));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("ok = true\nbad =").unwrap_err().to_string();
        assert!(err.contains("line 2"), "{err}");
        assert!(
            parse("a = 1\na = 2\n").is_err(),
            "duplicate keys must error"
        );
    }
}
