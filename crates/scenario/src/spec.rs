//! The declarative scenario schema: what one experiment *is*, as data.
//!
//! A [`ScenarioSpec`] fully describes an experiment — topology, channel,
//! traffic, adapters under test, duration, and RNG seed — and can carry a
//! [`Sweep`] of parameter axes that the engine expands into a cartesian run
//! matrix. Specs serialize to/from TOML (via [`crate::toml`]) and JSON (via
//! `serde_json`), so "a new workload" is a data file, not a new binary.

use serde::{DeError, Deserialize, Serialize, Value};
use softrate_channel::model::FadingSpec;
use softrate_channel::pathloss::Attenuation;
use softrate_net::spatial::SpatialSpec;
use softrate_sim::fault;

use crate::toml;

/// Error building or validating a scenario.
#[derive(Debug, Clone)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl From<DeError> for SpecError {
    fn from(e: DeError) -> Self {
        SpecError(e.to_string())
    }
}

impl From<toml::TomlError> for SpecError {
    fn from(e: toml::TomlError) -> Self {
        SpecError(e.to_string())
    }
}

/// One fully described experiment (before sweep expansion).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (used in run labels and result files).
    pub name: String,
    /// Human-readable description.
    pub description: Option<String>,
    /// Simulated seconds per run.
    pub duration: f64,
    /// Master seed; every run derives its own seed from this plus its
    /// position in the expanded matrix.
    pub seed: u64,
    /// Who talks to whom.
    pub topology: TopologySpec,
    /// The wireless channel every link experiences.
    pub channel: ChannelSpec,
    /// What the flows carry.
    pub traffic: TrafficSpec,
    /// Deterministic fault injection (`softrate-faults`): outages,
    /// jammer bursts, SNR cliffs, churn, hint corruption. Omitted (or
    /// empty) means faults-off — byte-identical to a pre-fault build.
    pub faults: Option<FaultsSpec>,
    /// Adapters under test — one run per adapter (an implicit matrix axis).
    /// Defaults to SoftRate alone when omitted.
    pub adapters: Option<Vec<AdapterSpec>>,
    /// Parameter sweep axes (cartesian product).
    pub sweep: Option<Sweep>,
}

/// Topology parameters.
///
/// Two mutually exclusive shapes: the classic single-cell Figure 12
/// topology (`n_clients` stations around one AP, trace-driven links), or a
/// multi-cell spatial deployment (`[topology.spatial]`: an AP grid,
/// mobility, roaming, streaming channels — see
/// [`softrate_net::spatial::SpatialSpec`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Number of wireless clients (one flow each) in the single-cell
    /// topology; defaults to 1. Must be omitted when `spatial` is set.
    pub n_clients: Option<usize>,
    /// Probability that one client carrier-senses another's transmission
    /// (1.0 = perfect carrier sense, 0.0 = fully hidden terminals).
    /// Single-cell only: the spatial topology senses by geometry.
    pub carrier_sense_prob: Option<f64>,
    /// MAC queue capacity in frames (default 50). Applies to single-cell
    /// links and to spatial flow traffic (TCP / on–off / UDP download);
    /// the saturated-uplink-UDP spatial fast path has no queues.
    pub queue_cap: Option<usize>,
    /// Multi-cell spatial deployment; routes the run to the streaming
    /// `softrate-net` simulator instead of the trace-driven one.
    pub spatial: Option<SpatialSpec>,
}

/// Traffic parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Transport workload.
    pub kind: TrafficModel,
    /// Flow direction (default `Upload`).
    pub direction: Option<Direction>,
}

/// Transport workload kinds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficModel {
    /// TCP NewReno bulk transfer.
    Tcp,
    /// Saturated UDP datagram stream.
    UdpBulk,
    /// Non-saturated bursty source: Poisson datagram arrivals at
    /// `rate_pps` during `on_s`-second bursts separated by `off_s`-second
    /// silences (per-flow phase stagger; drop-tail at a full source
    /// queue).
    OnOff {
        /// Mean arrival rate while on, packets/second (> 0).
        rate_pps: f64,
        /// Burst duration, seconds (> 0).
        on_s: f64,
        /// Silence between bursts, seconds (>= 0).
        off_s: f64,
    },
}

/// Flow direction over the wireless hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Clients send to LAN hosts.
    Upload,
    /// LAN hosts send to clients.
    Download,
}

/// How link traces are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelModel {
    /// Closed-form SNR→BER model over the real Jakes fading envelope:
    /// hundreds of times faster than the PHY, good enough for protocol
    /// dynamics studies and large sweeps. Deterministic per seed.
    Analytic,
    /// Full software PHY per probe (OFDM + BCJR), the paper's methodology.
    /// Slow; traces are cached on disk keyed by the channel parameters.
    Phy,
}

/// The wireless channel shared by every link in the scenario. Each link
/// gets its own fading/noise realization (distinct seeds) of this spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelSpec {
    /// Trace production model.
    pub model: ChannelModel,
    /// Mean SNR in dB (before attenuation/fading).
    pub snr_db: f64,
    /// Small-scale fading (reuses the channel crate's spec verbatim).
    pub fading: FadingSpec,
    /// Large-scale attenuation trajectory (default: none).
    pub attenuation: Option<Attenuation>,
    /// Periodic wideband interference bursts — a microwave-oven-style
    /// duty cycle that floors the SINR while active. Analytic model only.
    pub interference: Option<BurstInterference>,
    /// Probing interval in seconds (default 5 ms, the paper's budget).
    pub probe_interval: Option<f64>,
}

/// Periodic interference bursts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstInterference {
    /// Burst repetition period, seconds.
    pub period: f64,
    /// Burst duration within each period, seconds.
    pub burst_len: f64,
    /// SINR penalty while the burst is active, dB.
    pub penalty_db: f64,
}

/// A rate-adaptation algorithm under test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdapterSpec {
    /// SoftRate as evaluated in the paper (80 % detection, no postambles).
    SoftRate,
    /// Ideal SoftRate: postambles + perfect interference detection.
    SoftRateIdeal,
    /// SoftRate with its interference detector disabled (ablation).
    SoftRateNoDetect,
    /// SampleRate with a 1-second window.
    SampleRate,
    /// RRAA with adaptive RTS.
    Rraa,
    /// Per-frame SNR feedback. `table` is the per-rate minimum SNR in dB;
    /// when omitted the engine trains a table on this run's own traces.
    Snr {
        /// Explicit per-rate minimum-SNR thresholds (dB), non-decreasing.
        table: Option<Vec<f64>>,
    },
    /// CHARM-like averaged SNR; `table` as for `Snr`.
    Charm {
        /// Explicit per-rate minimum-SNR thresholds (dB), non-decreasing.
        table: Option<Vec<f64>>,
    },
    /// The trace oracle.
    Omniscient,
    /// Pinned to one rate.
    Fixed {
        /// Rate index to pin.
        rate_idx: usize,
    },
}

impl AdapterSpec {
    /// Display label used in run names and result lines.
    pub fn label(&self) -> String {
        match self {
            AdapterSpec::SoftRate => "SoftRate".into(),
            AdapterSpec::SoftRateIdeal => "SoftRate-Ideal".into(),
            AdapterSpec::SoftRateNoDetect => "SoftRate-NoDetect".into(),
            AdapterSpec::SampleRate => "SampleRate".into(),
            AdapterSpec::Rraa => "RRAA".into(),
            AdapterSpec::Snr { table: Some(_) } => "SNR-pretrained".into(),
            AdapterSpec::Snr { table: None } => "SNR".into(),
            AdapterSpec::Charm { .. } => "CHARM".into(),
            AdapterSpec::Omniscient => "Omniscient".into(),
            AdapterSpec::Fixed { rate_idx } => format!("Fixed-{rate_idx}"),
        }
    }
}

/// The `[faults]` table: deterministic fault injection, sweepable like
/// any other axis (e.g. `"faults.jammer.power_db" = [0.0, 10.0]`).
///
/// Every class is optional and at most one fault of each class runs per
/// point. An empty table is exactly equivalent to no table at all: the
/// engine lowers a no-op spec to `None`, so faults-off runs stay
/// byte-identical to pre-fault builds (pinned by test). All classes
/// except `hint` need geometry and therefore a spatial topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultsSpec {
    /// AP blackout + restart: the AP stops receiving/acking/sending at
    /// `at`, drops its queued downlink frames (with accounting), and
    /// returns at `at + duration`; stations re-home via roaming.
    pub ap_outage: Option<ApOutageSpec>,
    /// Stationary wideband jammer burst: receptions whose
    /// signal-to-jammer ratio falls below the capture SIR are corrupted
    /// while the burst is on. Attacks receptions, not airtime.
    pub jammer: Option<JammerSpec>,
    /// Noise-floor step: every link's SNR drops by `delta_db` (an SNR
    /// cliff), recovering after `duration` if one is given.
    pub noise_step: Option<NoiseStepSpec>,
    /// Station churn: a join wave (flash crowd) and/or a leave wave.
    pub churn: Option<ChurnSpec>,
    /// SoftPHY hint corruption: per-frame confidences dropped or
    /// quantized. The only class that also applies to the single-cell
    /// trace topology.
    pub hint: Option<HintFaultsSpec>,
}

/// `[faults.ap_outage]`: timed AP death and restart.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApOutageSpec {
    /// Index of the AP to kill (row-major grid order).
    pub ap: usize,
    /// Outage start, seconds into the run.
    pub at: f64,
    /// Outage length, seconds; the AP restarts at `at + duration`.
    pub duration: f64,
}

/// `[faults.jammer]`: a timed jammer burst at a fixed position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JammerSpec {
    /// Jammer x position, metres.
    pub x: f64,
    /// Jammer y position, metres.
    pub y: f64,
    /// Transmit power relative to an AP's reference power, dB
    /// (0 = as loud as an AP; positive = louder). Defaults to 0.
    pub power_db: Option<f64>,
    /// Burst start, seconds into the run.
    pub at: f64,
    /// Burst length, seconds.
    pub duration: f64,
}

/// `[faults.noise_step]`: a timed step change in the noise floor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseStepSpec {
    /// Step start, seconds into the run.
    pub at: f64,
    /// SNR reduction while active, dB (positive = worse channel).
    pub delta_db: f64,
    /// Step length, seconds; omitted holds the step to the run's end.
    pub duration: Option<f64>,
}

/// `[faults.churn]`: join/leave waves. Joiners are the *last*
/// `join_count` stations (dormant until their individual join time
/// `join_at + U(0, join_ramp_s)`, a seeded per-station draw); leavers
/// are the *first* `leave_count` stations. Omitted counts default to 0.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// How many stations join late (default 0).
    pub join_count: Option<usize>,
    /// Earliest join time, seconds (default 0).
    pub join_at: Option<f64>,
    /// Width of the join wave, seconds (default 0 = all at once).
    pub join_ramp_s: Option<f64>,
    /// How many stations leave mid-run (default 0).
    pub leave_count: Option<usize>,
    /// Earliest leave time, seconds (default 0).
    pub leave_at: Option<f64>,
    /// Width of the leave wave, seconds (default 0).
    pub leave_ramp_s: Option<f64>,
}

/// `[faults.hint]`: SoftPHY hint corruption, the paper's own
/// robustness knob (§6.4 runs SoftRate with degraded feedback).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HintFaultsSpec {
    /// Probability a frame's BER/SNR hints are lost entirely
    /// (default 0).
    pub drop_prob: Option<f64>,
    /// Quantization step for surviving hints, dB (default 0 = exact).
    pub quantize_db: Option<f64>,
}

impl FaultsSpec {
    /// Lowers the serde-facing table into the plain-data
    /// [`softrate_sim::fault::FaultConfig`] the simulators consume,
    /// applying defaults (mirrors how `TrafficSpec` lowers into
    /// `TrafficKind`).
    pub fn lower(&self) -> fault::FaultConfig {
        fault::FaultConfig {
            ap_outage: self.ap_outage.map(|o| fault::ApOutage {
                ap: o.ap,
                at: o.at,
                duration: o.duration,
            }),
            jammer: self.jammer.map(|j| fault::Jammer {
                x: j.x,
                y: j.y,
                power_db: j.power_db.unwrap_or(0.0),
                at: j.at,
                duration: j.duration,
            }),
            noise_step: self.noise_step.map(|s| fault::NoiseStep {
                at: s.at,
                delta_db: s.delta_db,
                duration: s.duration,
            }),
            churn: self.churn.map(|c| fault::Churn {
                join_count: c.join_count.unwrap_or(0),
                join_at: c.join_at.unwrap_or(0.0),
                join_ramp_s: c.join_ramp_s.unwrap_or(0.0),
                leave_count: c.leave_count.unwrap_or(0),
                leave_at: c.leave_at.unwrap_or(0.0),
                leave_ramp_s: c.leave_ramp_s.unwrap_or(0.0),
            }),
            hint: self.hint.map(|h| fault::HintFaults {
                drop_prob: h.drop_prob.unwrap_or(0.0),
                quantize_db: h.quantize_db.unwrap_or(0.0),
            }),
        }
    }
}

/// Sweep axes: an ordered list of `(dotted parameter path, values)`.
///
/// In TOML this is a table whose keys are dotted paths into the spec:
///
/// ```toml
/// [sweep]
/// "channel.snr_db" = [10.0, 16.0, 22.0]
/// "topology.n_clients" = [1, 3]
/// ```
///
/// Axes expand in declaration order (first axis outermost), so the run
/// matrix order — and therefore result files — is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep(pub Vec<SweepAxis>);

/// One sweep axis.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxis {
    /// Dotted path of the field to vary (e.g. `channel.snr_db`).
    pub param: String,
    /// Values the axis takes.
    pub values: Vec<Value>,
}

impl Serialize for Sweep {
    fn to_value(&self) -> Value {
        Value::Map(
            self.0
                .iter()
                .map(|axis| (axis.param.clone(), Value::Seq(axis.values.clone())))
                .collect(),
        )
    }
}

impl Deserialize for Sweep {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = serde::struct_map(v, "Sweep")?;
        let mut axes = Vec::new();
        for (param, values) in m {
            let values = serde::seq(values, "Sweep axis")?.to_vec();
            if values.is_empty() {
                return Err(DeError::custom(format!(
                    "sweep axis `{param}` has no values"
                )));
            }
            axes.push(SweepAxis {
                param: param.clone(),
                values,
            });
        }
        Ok(Sweep(axes))
    }
}

impl ScenarioSpec {
    /// Parses a TOML scenario document.
    pub fn from_toml(text: &str) -> Result<Self, SpecError> {
        let doc = toml::parse(text)?;
        let spec = ScenarioSpec::from_value(&doc)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Serializes to TOML.
    pub fn to_toml(&self) -> String {
        toml::to_string(&self.to_value()).expect("spec serializes to a map")
    }

    /// Parses a JSON scenario document.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let spec: ScenarioSpec =
            serde_json::from_str(text).map_err(|e| SpecError(e.to_string()))?;
        spec.validate()?;
        Ok(spec)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Adapters under test, defaulting to SoftRate alone.
    pub fn adapters(&self) -> Vec<AdapterSpec> {
        match &self.adapters {
            Some(a) if !a.is_empty() => a.clone(),
            _ => vec![AdapterSpec::SoftRate],
        }
    }

    /// Effective client count for the single-cell topology.
    pub fn n_clients(&self) -> usize {
        self.topology.n_clients.unwrap_or(1)
    }

    /// Effective carrier-sense probability.
    pub fn carrier_sense_prob(&self) -> f64 {
        self.topology.carrier_sense_prob.unwrap_or(1.0)
    }

    /// Effective flow direction.
    pub fn direction(&self) -> Direction {
        self.traffic.direction.unwrap_or(Direction::Upload)
    }

    /// Effective probing interval.
    pub fn probe_interval(&self) -> f64 {
        self.channel.probe_interval.unwrap_or(0.005)
    }

    /// Structural sanity checks, run after every (re)deserialization —
    /// including on each sweep-expanded point.
    pub fn validate(&self) -> Result<(), SpecError> {
        let fail = |msg: String| Err(SpecError(format!("scenario `{}`: {msg}", self.name)));
        if self.name.is_empty() {
            return Err(SpecError("scenario name must not be empty".into()));
        }
        if !self.duration.is_finite() || self.duration <= 0.0 {
            return fail(format!("duration must be positive, got {}", self.duration));
        }
        if self.topology.n_clients == Some(0) {
            return fail("topology.n_clients must be >= 1".into());
        }
        let cs = self.carrier_sense_prob();
        if !(0.0..=1.0).contains(&cs) {
            return fail(format!("carrier_sense_prob must be in [0,1], got {cs}"));
        }
        if let Some(spatial) = &self.topology.spatial {
            if let Err(e) = spatial.resolve() {
                return fail(e.to_string());
            }
            if self.topology.n_clients.is_some() {
                return fail(
                    "topology.n_clients does not apply to a spatial topology \
                     (station count is topology.spatial.n_stations)"
                        .into(),
                );
            }
            if self.topology.carrier_sense_prob.is_some() {
                return fail(
                    "carrier_sense_prob does not apply to a spatial topology \
                     (sensing is geometric: topology.spatial.sense_snr_db)"
                        .into(),
                );
            }
            if self.topology.queue_cap.is_some()
                && self.traffic.kind == TrafficModel::UdpBulk
                && matches!(self.direction(), Direction::Upload)
            {
                return fail(
                    "queue_cap has no effect on saturated uplink UDP over a spatial \
                     topology (the fast path is queueless); it applies to spatial \
                     flow traffic — TCP, OnOff, or UDP download"
                        .into(),
                );
            }
            if self.channel.model != ChannelModel::Analytic {
                return fail(
                    "a spatial topology streams fates from the analytic model; \
                     set channel.model = \"Analytic\""
                        .into(),
                );
            }
            if self.channel.fading != FadingSpec::None {
                return fail(
                    "the spatial layer owns small-scale fading (Rayleigh, Doppler from \
                     mobility or topology.spatial.doppler_hz); set channel.fading = \"None\""
                        .into(),
                );
            }
            if self.channel.attenuation.is_some() || self.channel.interference.is_some() {
                return fail(
                    "channel.attenuation / channel.interference do not apply to a spatial \
                     topology (path loss comes from geometry, interference from \
                     concurrent transmissions)"
                        .into(),
                );
            }
            for adapter in self.adapters() {
                if matches!(
                    adapter,
                    AdapterSpec::Snr { table: None } | AdapterSpec::Charm { table: None }
                ) {
                    return fail(
                        "SNR/CHARM adapters need an explicit `table` in a spatial topology \
                         (there are no traces to train on)"
                            .into(),
                    );
                }
            }
        }
        if !self.probe_interval().is_finite() || self.probe_interval() <= 0.0 {
            return fail("probe_interval must be positive".into());
        }
        if let Some(f) = &self.faults {
            self.validate_faults(f)?;
        }
        if let TrafficModel::OnOff {
            rate_pps,
            on_s,
            off_s,
        } = self.traffic.kind
        {
            if !rate_pps.is_finite() || rate_pps <= 0.0 {
                return fail(format!("OnOff rate_pps must be positive, got {rate_pps}"));
            }
            if !on_s.is_finite() || on_s <= 0.0 {
                return fail(format!("OnOff on_s must be positive, got {on_s}"));
            }
            if !off_s.is_finite() || off_s < 0.0 {
                return fail(format!("OnOff off_s must be >= 0, got {off_s}"));
            }
        }
        if self.channel.interference.is_some() && self.channel.model == ChannelModel::Phy {
            return fail(
                "interference bursts are only supported by the Analytic channel model".into(),
            );
        }
        if self.channel.model == ChannelModel::Analytic
            && matches!(self.channel.fading, FadingSpec::Multipath { .. })
        {
            return fail(
                "the Analytic channel model is frequency-flat and cannot honour \
                 Multipath fading (n_taps / decay_db_per_tap would be silently \
                 ignored) — use `model = \"Phy\"` or `fading.Flat`"
                    .into(),
            );
        }
        if let Some(b) = &self.channel.interference {
            if !b.period.is_finite() || b.period <= 0.0 || !(0.0..=b.period).contains(&b.burst_len)
            {
                return fail(format!(
                    "interference bursts need 0 <= burst_len <= period, got {}/{}",
                    b.burst_len, b.period
                ));
            }
        }
        for adapter in self.adapters() {
            match adapter {
                AdapterSpec::Fixed { rate_idx } if rate_idx >= softrate_trace::recipes::N_RATES => {
                    return fail(format!("Fixed rate_idx {rate_idx} out of range"));
                }
                AdapterSpec::Snr { table: Some(t) } | AdapterSpec::Charm { table: Some(t) } => {
                    if t.len() != softrate_trace::recipes::N_RATES {
                        return fail(format!(
                            "SNR table must list {} thresholds, got {}",
                            softrate_trace::recipes::N_RATES,
                            t.len()
                        ));
                    }
                    if t.windows(2).any(|w| w[1] < w[0]) {
                        return fail("SNR table thresholds must be non-decreasing".into());
                    }
                }
                _ => {}
            }
        }
        if let Some(sweep) = &self.sweep {
            for axis in &sweep.0 {
                if axis.values.is_empty() {
                    return fail(format!("sweep axis `{}` has no values", axis.param));
                }
            }
        }
        Ok(())
    }

    /// Fault-table checks (split out of [`Self::validate`] for length).
    fn validate_faults(&self, f: &FaultsSpec) -> Result<(), SpecError> {
        let fail = |msg: String| Err(SpecError(format!("scenario `{}`: {msg}", self.name)));
        let timed = |what: &str, at: f64, duration: f64| {
            if !at.is_finite() || at < 0.0 {
                return fail(format!("{what}.at must be >= 0, got {at}"));
            }
            if !duration.is_finite() || duration <= 0.0 {
                return fail(format!("{what}.duration must be positive, got {duration}"));
            }
            Ok(())
        };
        let spatial = self.topology.spatial.as_ref();
        if spatial.is_none()
            && (f.ap_outage.is_some()
                || f.jammer.is_some()
                || f.noise_step.is_some()
                || f.churn.is_some())
        {
            return fail(
                "faults.ap_outage / jammer / noise_step / churn need geometry and \
                 therefore [topology.spatial]; only faults.hint applies to the \
                 single-cell topology"
                    .into(),
            );
        }
        if let Some(o) = &f.ap_outage {
            timed("faults.ap_outage", o.at, o.duration)?;
            let n_aps = spatial.map(|sp| sp.ap_cols * sp.ap_rows).unwrap_or(0);
            if o.ap >= n_aps {
                return fail(format!(
                    "faults.ap_outage.ap {} out of range (grid has {n_aps} APs)",
                    o.ap
                ));
            }
        }
        if let Some(j) = &f.jammer {
            timed("faults.jammer", j.at, j.duration)?;
            if !j.x.is_finite() || !j.y.is_finite() || !j.power_db.unwrap_or(0.0).is_finite() {
                return fail("faults.jammer position/power must be finite".into());
            }
        }
        if let Some(s) = &f.noise_step {
            if !s.at.is_finite() || s.at < 0.0 {
                return fail(format!("faults.noise_step.at must be >= 0, got {}", s.at));
            }
            if !s.delta_db.is_finite() {
                return fail("faults.noise_step.delta_db must be finite".into());
            }
            if let Some(d) = s.duration {
                if !d.is_finite() || d <= 0.0 {
                    return fail(format!(
                        "faults.noise_step.duration must be positive, got {d}"
                    ));
                }
            }
        }
        if let Some(c) = &f.churn {
            // Churn changes who contends, which only the queueless
            // saturated-uplink medium models (dormant/left stations simply
            // stop being pollable senders); flow traffic would need
            // per-station transport teardown.
            if !(self.traffic.kind == TrafficModel::UdpBulk
                && matches!(self.direction(), Direction::Upload))
            {
                return fail(
                    "faults.churn requires the saturated uplink UDP workload \
                     (traffic.kind = \"UdpBulk\", direction Upload)"
                        .into(),
                );
            }
            for (name, v) in [
                ("join_at", c.join_at),
                ("join_ramp_s", c.join_ramp_s),
                ("leave_at", c.leave_at),
                ("leave_ramp_s", c.leave_ramp_s),
            ] {
                let v = v.unwrap_or(0.0);
                if !v.is_finite() || v < 0.0 {
                    return fail(format!("faults.churn.{name} must be >= 0, got {v}"));
                }
            }
            let n = spatial.map(|sp| sp.n_stations).unwrap_or(0);
            let (join, leave) = (c.join_count.unwrap_or(0), c.leave_count.unwrap_or(0));
            if join > n || leave > n {
                return fail(format!(
                    "faults.churn join_count {join} / leave_count {leave} exceed \
                     n_stations {n}"
                ));
            }
        }
        if let Some(h) = &f.hint {
            let p = h.drop_prob.unwrap_or(0.0);
            if !(0.0..=1.0).contains(&p) {
                return fail(format!("faults.hint.drop_prob must be in [0,1], got {p}"));
            }
            let q = h.quantize_db.unwrap_or(0.0);
            if !q.is_finite() || q < 0.0 {
                return fail(format!("faults.hint.quantize_db must be >= 0, got {q}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "demo".into(),
            description: Some("a demo".into()),
            duration: 2.0,
            seed: 11,
            topology: TopologySpec {
                n_clients: Some(2),
                carrier_sense_prob: Some(0.8),
                queue_cap: None,
                spatial: None,
            },
            channel: ChannelSpec {
                model: ChannelModel::Analytic,
                snr_db: 18.0,
                fading: FadingSpec::Flat { doppler_hz: 40.0 },
                attenuation: Some(Attenuation::Constant { db: -1.0 }),
                interference: None,
                probe_interval: None,
            },
            traffic: TrafficSpec {
                kind: TrafficModel::Tcp,
                direction: None,
            },
            faults: None,
            adapters: Some(vec![
                AdapterSpec::SoftRate,
                AdapterSpec::Fixed { rate_idx: 3 },
                AdapterSpec::Snr { table: None },
            ]),
            sweep: Some(Sweep(vec![SweepAxis {
                param: "channel.snr_db".into(),
                values: vec![Value::Float(10.0), Value::Float(18.0)],
            }])),
        }
    }

    #[test]
    fn toml_roundtrip_is_lossless() {
        let spec = demo_spec();
        let text = spec.to_toml();
        let back = ScenarioSpec::from_toml(&text).unwrap();
        assert_eq!(back, spec, "TOML:\n{text}");
        // And a second serialization is byte-identical.
        assert_eq!(back.to_toml(), text);
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let spec = demo_spec();
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn validation_catches_nonsense() {
        let mut s = demo_spec();
        s.duration = 0.0;
        assert!(s.validate().is_err());

        let mut s = demo_spec();
        s.topology.n_clients = Some(0);
        assert!(s.validate().is_err());

        let mut s = demo_spec();
        s.adapters = Some(vec![AdapterSpec::Fixed { rate_idx: 99 }]);
        assert!(s.validate().is_err());

        let mut s = demo_spec();
        s.adapters = Some(vec![AdapterSpec::Snr {
            table: Some(vec![5.0, 4.0]),
        }]);
        assert!(s.validate().is_err());

        let mut s = demo_spec();
        s.channel.model = ChannelModel::Phy;
        s.channel.interference = Some(BurstInterference {
            period: 0.02,
            burst_len: 0.01,
            penalty_db: 20.0,
        });
        assert!(s.validate().is_err());
    }

    #[test]
    fn defaults_apply() {
        let mut s = demo_spec();
        s.adapters = None;
        s.topology.carrier_sense_prob = None;
        assert_eq!(s.adapters(), vec![AdapterSpec::SoftRate]);
        assert_eq!(s.carrier_sense_prob(), 1.0);
        assert_eq!(s.probe_interval(), 0.005);
        assert!(matches!(s.direction(), Direction::Upload));
        s.topology.n_clients = None;
        assert_eq!(s.n_clients(), 1);
    }

    fn spatial_demo() -> ScenarioSpec {
        use softrate_net::mobility::MobilitySpec;
        let mut s = demo_spec();
        s.topology = TopologySpec {
            n_clients: None,
            carrier_sense_prob: None,
            queue_cap: None,
            spatial: Some(SpatialSpec {
                ap_cols: 3,
                ap_rows: 1,
                ap_spacing_m: 30.0,
                n_stations: 20,
                snr_ref_db: None,
                path_loss_exp: None,
                sense_snr_db: None,
                capture_sir_db: None,
                doppler_hz: None,
                mobility: MobilitySpec::Static,
                roaming: None,
            }),
        };
        s.channel.fading = FadingSpec::None;
        s.channel.attenuation = None;
        s.traffic.kind = TrafficModel::UdpBulk;
        s.sweep = None;
        s.adapters = Some(vec![AdapterSpec::SoftRate]);
        s
    }

    #[test]
    fn spatial_spec_roundtrips_and_validates() {
        let s = spatial_demo();
        s.validate().unwrap();
        let back = ScenarioSpec::from_toml(&s.to_toml()).unwrap();
        assert_eq!(back, s, "TOML:\n{}", s.to_toml());
        let back = ScenarioSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn spatial_validation_rejects_single_cell_knobs_and_bad_channels() {
        let mut s = spatial_demo();
        s.topology.n_clients = Some(2);
        assert!(s.validate().is_err(), "n_clients + spatial must clash");

        let mut s = spatial_demo();
        s.topology.carrier_sense_prob = Some(0.5);
        assert!(s.validate().is_err());

        let mut s = spatial_demo();
        s.channel.fading = FadingSpec::Flat { doppler_hz: 40.0 };
        assert!(s.validate().is_err(), "spatial owns fading");

        let mut s = spatial_demo();
        s.adapters = Some(vec![AdapterSpec::Snr { table: None }]);
        assert!(s.validate().is_err(), "no traces to train SNR tables on");

        let mut s = spatial_demo();
        if let Some(sp) = &mut s.topology.spatial {
            sp.n_stations = 0;
        }
        assert!(s.validate().is_err(), "spatial resolve errors must surface");

        // queue_cap on the queueless saturated-uplink fast path would be
        // silently ignored — reject it instead.
        let mut s = spatial_demo();
        s.topology.queue_cap = Some(10);
        assert!(
            s.validate().is_err(),
            "queue_cap + saturated UDP must clash"
        );
    }

    #[test]
    fn spatial_accepts_flow_traffic() {
        // The "saturated uplink UDP only" restriction is gone: TCP in
        // either direction, on-off sources, and queue_cap all validate.
        let mut s = spatial_demo();
        s.traffic.kind = TrafficModel::Tcp;
        s.validate().expect("spatial TCP upload validates");
        s.traffic.direction = Some(Direction::Download);
        s.validate().expect("spatial TCP download validates");
        s.topology.queue_cap = Some(32);
        s.validate()
            .expect("queue_cap applies to spatial flow traffic");
        s.traffic.kind = TrafficModel::OnOff {
            rate_pps: 100.0,
            on_s: 0.5,
            off_s: 0.5,
        };
        s.validate().expect("spatial on-off validates");
        // And the flow-traffic spec round-trips through both formats.
        let back = ScenarioSpec::from_toml(&s.to_toml()).unwrap();
        assert_eq!(back, s, "TOML:\n{}", s.to_toml());
        let back = ScenarioSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn onoff_validation_rejects_nonsense() {
        let base = |kind| {
            let mut s = demo_spec();
            s.sweep = None;
            s.traffic.kind = kind;
            s
        };
        assert!(base(TrafficModel::OnOff {
            rate_pps: 0.0,
            on_s: 0.5,
            off_s: 0.5
        })
        .validate()
        .is_err());
        assert!(base(TrafficModel::OnOff {
            rate_pps: 100.0,
            on_s: 0.0,
            off_s: 0.5
        })
        .validate()
        .is_err());
        assert!(base(TrafficModel::OnOff {
            rate_pps: 100.0,
            on_s: 0.5,
            off_s: -1.0
        })
        .validate()
        .is_err());
        assert!(base(TrafficModel::OnOff {
            rate_pps: 100.0,
            on_s: 0.5,
            off_s: 0.0
        })
        .validate()
        .is_ok());
    }

    fn faulted_demo() -> ScenarioSpec {
        let mut s = spatial_demo();
        s.faults = Some(FaultsSpec {
            ap_outage: Some(ApOutageSpec {
                ap: 1,
                at: 0.5,
                duration: 0.5,
            }),
            jammer: Some(JammerSpec {
                x: 45.0,
                y: 0.0,
                power_db: Some(6.0),
                at: 0.2,
                duration: 0.3,
            }),
            noise_step: Some(NoiseStepSpec {
                at: 1.0,
                delta_db: 8.0,
                duration: Some(0.4),
            }),
            churn: Some(ChurnSpec {
                join_count: Some(5),
                join_at: Some(0.3),
                join_ramp_s: Some(0.2),
                leave_count: None,
                leave_at: None,
                leave_ramp_s: None,
            }),
            hint: Some(HintFaultsSpec {
                drop_prob: Some(0.25),
                quantize_db: Some(2.0),
            }),
        });
        s
    }

    #[test]
    fn faulted_spec_roundtrips_and_lowers() {
        let s = faulted_demo();
        s.validate().unwrap();
        let text = s.to_toml();
        let back = ScenarioSpec::from_toml(&text).unwrap();
        assert_eq!(back, s, "TOML:\n{text}");
        assert_eq!(back.to_toml(), text);
        let back = ScenarioSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);

        let lowered = s.faults.unwrap().lower();
        assert!(!lowered.is_noop());
        assert_eq!(lowered.ap_outage.unwrap().ap, 1);
        assert_eq!(lowered.jammer.unwrap().power_db, 6.0);
        assert_eq!(lowered.churn.unwrap().leave_count, 0);
        assert_eq!(lowered.hint.unwrap().drop_prob, 0.25);
        // Defaults fill omitted sub-fields.
        let minimal = FaultsSpec {
            ap_outage: None,
            jammer: None,
            noise_step: None,
            churn: None,
            hint: None,
        };
        assert!(minimal.lower().is_noop());
    }

    #[test]
    fn fault_validation_rejects_nonsense() {
        // Geometry-dependent classes need a spatial topology.
        let mut s = demo_spec();
        s.sweep = None;
        s.faults = Some(FaultsSpec {
            ap_outage: None,
            jammer: Some(JammerSpec {
                x: 0.0,
                y: 0.0,
                power_db: None,
                at: 0.1,
                duration: 0.1,
            }),
            noise_step: None,
            churn: None,
            hint: None,
        });
        assert!(s.validate().is_err(), "jammer without spatial must clash");

        // ...but hint corruption alone is fine single-cell.
        let mut s = demo_spec();
        s.sweep = None;
        s.faults = Some(FaultsSpec {
            ap_outage: None,
            jammer: None,
            noise_step: None,
            churn: None,
            hint: Some(HintFaultsSpec {
                drop_prob: Some(0.5),
                quantize_db: None,
            }),
        });
        s.validate().expect("single-cell hint faults validate");

        let mut s = faulted_demo();
        s.faults.as_mut().unwrap().ap_outage.as_mut().unwrap().ap = 9;
        assert!(s.validate().is_err(), "AP index out of grid range");

        let mut s = faulted_demo();
        s.faults.as_mut().unwrap().jammer.as_mut().unwrap().duration = 0.0;
        assert!(s.validate().is_err(), "zero-length jammer burst");

        let mut s = faulted_demo();
        s.faults
            .as_mut()
            .unwrap()
            .churn
            .as_mut()
            .unwrap()
            .join_count = Some(999);
        assert!(s.validate().is_err(), "join_count beyond n_stations");

        let mut s = faulted_demo();
        s.traffic.kind = TrafficModel::Tcp;
        assert!(s.validate().is_err(), "churn needs saturated uplink UDP");

        let mut s = faulted_demo();
        s.faults.as_mut().unwrap().hint.as_mut().unwrap().drop_prob = Some(1.5);
        assert!(s.validate().is_err(), "drop_prob > 1");

        let mut s = faulted_demo();
        s.faults
            .as_mut()
            .unwrap()
            .noise_step
            .as_mut()
            .unwrap()
            .duration = Some(-1.0);
        assert!(s.validate().is_err(), "negative noise-step duration");
    }

    #[test]
    fn empty_faults_table_parses_as_noop() {
        let text = r#"
name = "tiny"
duration = 1.0
seed = 3

[topology]
n_clients = 1

[channel]
model = "Analytic"
snr_db = 20.0
fading = "None"

[traffic]
kind = "Tcp"

[faults]
"#;
        let spec = ScenarioSpec::from_toml(text).unwrap();
        let f = spec.faults.expect("empty [faults] table parses to Some");
        assert!(f.lower().is_noop(), "empty table lowers to a no-op");
    }

    #[test]
    fn minimal_toml_parses_with_defaults() {
        let text = r#"
name = "tiny"
duration = 1.0
seed = 3

[topology]
n_clients = 1

[channel]
model = "Analytic"
snr_db = 20.0
fading = "None"

[traffic]
kind = "Tcp"
"#;
        let spec = ScenarioSpec::from_toml(text).unwrap();
        assert_eq!(spec.name, "tiny");
        assert!(spec.adapters.is_none());
        assert_eq!(spec.adapters(), vec![AdapterSpec::SoftRate]);
        assert_eq!(spec.channel.fading, FadingSpec::None);
    }

    #[test]
    fn fading_enum_tables_parse() {
        let text = r#"
name = "f"
duration = 1.0
seed = 0

[topology]
n_clients = 1

[channel]
model = "Analytic"
snr_db = 15.0

[channel.fading.Flat]
doppler_hz = 200.0

[traffic]
kind = "UdpBulk"
"#;
        let spec = ScenarioSpec::from_toml(text).unwrap();
        assert_eq!(spec.channel.fading, FadingSpec::Flat { doppler_hz: 200.0 });
        assert_eq!(spec.traffic.kind, TrafficModel::UdpBulk);
    }
}
