//! The built-in scenario library: curated TOML documents embedded at
//! compile time from `crates/scenario/scenarios/`.
//!
//! Coverage follows the cross-layer evaluation playbook — static baseline,
//! pedestrian / vehicular / slow / fast fading, periodic interference,
//! hidden terminals, multi-client contention, both directions, UDP and
//! TCP, an attenuation ramp, and a multi-axis stress sweep — so that new
//! studies start from `softrate-scenarios run --name <x>` instead of a new
//! binary.

use crate::spec::{ScenarioSpec, SpecError};

/// `(name, TOML source)` of every built-in scenario.
pub const BUILTINS: &[(&str, &str)] = &[
    (
        "static-office",
        include_str!("../scenarios/static-office.toml"),
    ),
    ("pedestrian", include_str!("../scenarios/pedestrian.toml")),
    ("vehicular", include_str!("../scenarios/vehicular.toml")),
    ("slow-fading", include_str!("../scenarios/slow-fading.toml")),
    ("fast-fading", include_str!("../scenarios/fast-fading.toml")),
    (
        "microwave-oven",
        include_str!("../scenarios/microwave-oven.toml"),
    ),
    (
        "hidden-terminal",
        include_str!("../scenarios/hidden-terminal.toml"),
    ),
    ("contention", include_str!("../scenarios/contention.toml")),
    (
        "downlink-office",
        include_str!("../scenarios/downlink-office.toml"),
    ),
    (
        "udp-vehicular",
        include_str!("../scenarios/udp-vehicular.toml"),
    ),
    ("walk-away", include_str!("../scenarios/walk-away.toml")),
    ("campus-mix", include_str!("../scenarios/campus-mix.toml")),
    // Multi-cell spatial deployments (streaming channels, softrate-net).
    (
        "dense-enterprise",
        include_str!("../scenarios/dense-enterprise.toml"),
    ),
    ("cell-edge", include_str!("../scenarios/cell-edge.toml")),
    (
        "roaming-walkabout",
        include_str!("../scenarios/roaming-walkabout.toml"),
    ),
    (
        "vehicular-driveby",
        include_str!("../scenarios/vehicular-driveby.toml"),
    ),
    // Spatial flow traffic (the pluggable transport layer: TCP both
    // directions over multi-cell geometry, bursty on-off sources).
    (
        "dense-enterprise-tcp",
        include_str!("../scenarios/dense-enterprise-tcp.toml"),
    ),
    (
        "roaming-tcp-download",
        include_str!("../scenarios/roaming-tcp-download.toml"),
    ),
    (
        "bursty-onoff-cell-edge",
        include_str!("../scenarios/bursty-onoff-cell-edge.toml"),
    ),
    // Fault injection (the `[faults]` axis: softrate-faults).
    ("ap-blackout", include_str!("../scenarios/ap-blackout.toml")),
    (
        "jammer-burst-cell-edge",
        include_str!("../scenarios/jammer-burst-cell-edge.toml"),
    ),
    ("flash-crowd", include_str!("../scenarios/flash-crowd.toml")),
];

/// Names of every built-in scenario, in catalogue order.
pub fn names() -> Vec<&'static str> {
    BUILTINS.iter().map(|(n, _)| *n).collect()
}

/// The raw TOML of a built-in scenario.
pub fn raw(name: &str) -> Option<&'static str> {
    BUILTINS.iter().find(|(n, _)| *n == name).map(|(_, t)| *t)
}

/// Parses a built-in scenario.
pub fn get(name: &str) -> Result<ScenarioSpec, SpecError> {
    let text =
        raw(name).ok_or_else(|| SpecError(format!("no built-in scenario named `{name}`")))?;
    ScenarioSpec::from_toml(text)
}

/// Levenshtein edit distance, for near-miss suggestions on typo'd names.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cur = row[j + 1];
            row[j + 1] = if ca == cb {
                prev
            } else {
                1 + prev.min(cur).min(row[j])
            };
            prev = cur;
        }
    }
    row[b.len()]
}

/// Built-in names close enough to `input` to be plausible typos, best
/// match first. "Close enough" scales with the input's length (an edit
/// distance of 3 is a typo in `dense-enterprise` but a different word in
/// `ped`), and substring matches always qualify.
pub fn suggestions(input: &str) -> Vec<&'static str> {
    let input_lower = input.to_ascii_lowercase();
    let budget = (input.chars().count() / 3).clamp(1, 4);
    let mut scored: Vec<(usize, &'static str)> = names()
        .into_iter()
        .filter_map(|n| {
            let d = edit_distance(&input_lower, n);
            let contains = n.contains(&input_lower) || input_lower.contains(n);
            (d <= budget || contains).then_some((d, n))
        })
        .collect();
    scored.sort_by_key(|&(d, n)| (d, n));
    scored.into_iter().map(|(_, n)| n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::expand;

    #[test]
    fn suggestions_catch_typos_and_rank_best_first() {
        assert_eq!(suggestions("dense-enterprize")[0], "dense-enterprise");
        assert_eq!(suggestions("fastfading")[0], "fast-fading");
        assert_eq!(suggestions("pedestrain")[0], "pedestrian");
        // Substrings qualify even past the edit budget.
        assert!(suggestions("roaming").contains(&"roaming-walkabout"));
        // Exact names trivially suggest themselves first.
        assert_eq!(suggestions("cell-edge")[0], "cell-edge");
        // Garbage matches nothing.
        assert!(suggestions("quux-zorble-9000").is_empty());
    }

    #[test]
    fn library_has_at_least_ten_scenarios() {
        assert!(BUILTINS.len() >= 10, "only {} built-ins", BUILTINS.len());
    }

    #[test]
    fn every_builtin_parses_validates_and_expands() {
        for (name, _) in BUILTINS {
            let spec = get(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(
                spec.name, *name,
                "file name and spec name must agree for `{name}`"
            );
            assert!(spec.description.is_some(), "{name} needs a description");
            let plans = expand(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!plans.is_empty(), "{name} expands to zero runs");
        }
    }

    #[test]
    fn builtins_roundtrip_through_toml() {
        for (name, _) in BUILTINS {
            let spec = get(name).unwrap();
            let back =
                ScenarioSpec::from_toml(&spec.to_toml()).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back, spec, "{name} must round-trip");
        }
    }

    #[test]
    fn campus_mix_is_a_three_axis_matrix() {
        let spec = get("campus-mix").unwrap();
        let plans = expand(&spec).unwrap();
        // 3 client counts x 3 SNRs x 2 Dopplers x 2 adapters.
        assert_eq!(plans.len(), 36);
    }

    #[test]
    fn library_spans_the_scenario_space() {
        use crate::spec::{ChannelModel, Direction, TrafficModel};
        let specs: Vec<_> = BUILTINS.iter().map(|(n, _)| get(n).unwrap()).collect();
        assert!(specs
            .iter()
            .any(|s| s.traffic.kind == TrafficModel::UdpBulk));
        assert!(specs
            .iter()
            .any(|s| matches!(s.direction(), Direction::Download)));
        assert!(specs.iter().any(|s| s.channel.interference.is_some()));
        assert!(specs.iter().any(|s| s.n_clients() >= 3));
        assert!(specs.iter().any(|s| s.carrier_sense_prob() < 1.0));
        assert!(specs.iter().any(|s| s.channel.attenuation.is_some()));
        assert!(specs.iter().any(|s| s.sweep.is_some()));
        assert!(specs
            .iter()
            .all(|s| s.channel.model == ChannelModel::Analytic));
    }

    #[test]
    fn spatial_builtins_cover_the_multi_cell_space() {
        use softrate_net::mobility::MobilitySpec;
        use softrate_net::spatial::HandoffPolicy;
        let spatial: Vec<_> = BUILTINS
            .iter()
            .map(|(n, _)| get(n).unwrap())
            .filter(|s| s.topology.spatial.is_some())
            .collect();
        assert!(spatial.len() >= 4, "need >= 4 spatial built-ins");
        let specs: Vec<_> = spatial
            .iter()
            .map(|s| s.topology.spatial.clone().unwrap())
            .collect();
        // Acceptance scale exists: >= 100 stations on >= 3 APs.
        assert!(specs
            .iter()
            .any(|s| s.n_stations >= 100 && s.ap_cols * s.ap_rows >= 3));
        // Every mobility model is represented.
        assert!(specs.iter().any(|s| s.mobility == MobilitySpec::Static));
        assert!(specs
            .iter()
            .any(|s| matches!(s.mobility, MobilitySpec::Linear { .. })));
        assert!(specs
            .iter()
            .any(|s| matches!(s.mobility, MobilitySpec::RandomWaypoint { .. })));
        // Both handoff policies appear (directly or via a sweep axis).
        let policies: Vec<HandoffPolicy> = specs
            .iter()
            .filter_map(|s| s.roaming.as_ref().map(|r| r.handoff))
            .collect();
        assert!(policies.contains(&HandoffPolicy::Reset));
        let sweeps_handoff = spatial.iter().any(|s| {
            s.sweep
                .as_ref()
                .is_some_and(|sw| sw.0.iter().any(|a| a.param.contains("roaming.handoff")))
        });
        assert!(
            policies.contains(&HandoffPolicy::Preserve) || sweeps_handoff,
            "Preserve must be exercised somewhere"
        );
    }

    /// The library must exercise the fault axis: an AP blackout with
    /// roaming to recover through, a jammer burst, and a churn wave —
    /// the three scenarios the resilience report compares adapters on.
    #[test]
    fn fault_builtins_cover_the_fault_axis() {
        let faulted: Vec<_> = BUILTINS
            .iter()
            .map(|(n, _)| get(n).unwrap())
            .filter(|s| s.faults.is_some())
            .collect();
        assert!(faulted.len() >= 3, "need >= 3 fault built-ins");
        assert!(
            faulted.iter().any(|s| s.faults.unwrap().ap_outage.is_some()
                && s.topology.spatial.as_ref().unwrap().roaming.is_some()),
            "an AP outage needs roaming to re-home through"
        );
        assert!(faulted.iter().any(|s| s.faults.unwrap().jammer.is_some()));
        assert!(faulted.iter().any(|s| s.faults.unwrap().churn.is_some()));
        for s in &faulted {
            assert!(
                !s.faults.unwrap().lower().is_noop(),
                "{}: noop faults",
                s.name
            );
        }
    }

    /// The spatial library must exercise the pluggable transport: TCP in
    /// both directions over multi-cell geometry (the paper's §6.2–§6.3
    /// workload), a non-saturated on–off source, and TCP across roaming
    /// handoffs — not just the saturated-uplink-UDP fast path.
    #[test]
    fn spatial_builtins_cover_flow_traffic() {
        use crate::spec::{Direction, TrafficModel};
        let spatial: Vec<_> = BUILTINS
            .iter()
            .map(|(n, _)| get(n).unwrap())
            .filter(|s| s.topology.spatial.is_some())
            .collect();
        assert!(spatial
            .iter()
            .any(|s| s.traffic.kind == TrafficModel::Tcp
                && matches!(s.direction(), Direction::Upload)));
        assert!(spatial
            .iter()
            .any(|s| s.traffic.kind == TrafficModel::Tcp
                && matches!(s.direction(), Direction::Download)));
        assert!(spatial
            .iter()
            .any(|s| matches!(s.traffic.kind, TrafficModel::OnOff { .. })));
        // TCP rides across handoffs somewhere (roaming + TCP in one spec).
        assert!(spatial.iter().any(|s| s.traffic.kind == TrafficModel::Tcp
            && s.topology.spatial.as_ref().unwrap().roaming.is_some()));
        // And the saturated-uplink baseline is still present.
        assert!(spatial
            .iter()
            .any(|s| s.traffic.kind == TrafficModel::UdpBulk));
    }
}
