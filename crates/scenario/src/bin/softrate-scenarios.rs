//! The scenario engine's command-line interface.
//!
//! ```text
//! softrate-scenarios list
//! softrate-scenarios show <name | --file spec.toml> [--expanded]
//! softrate-scenarios run  <name | --file spec.toml> [--threads N] [--shards N]
//!                         [--out results.jsonl] [--duration SECS] [--seed N]
//!                         [--metrics metrics.jsonl] [--trace trace.jsonl]
//!                         [--decisions decisions.jsonl]
//! softrate-scenarios sweep --file spec.toml [--threads N] [--shards N]
//!                         [--out results.jsonl]
//! ```
//!
//! `run` and `sweep` both execute the *full* expanded matrix in parallel;
//! `sweep` merely requires the spec to declare sweep axes (guarding
//! against accidentally running a 1-point "sweep"). Results go to stdout
//! as a summary table and, with `--out`, to a JSON-lines file whose bytes
//! are identical across repeat runs and thread counts.

use std::process::ExitCode;

use softrate_scenario::engine::{
    self, expand, outcomes_to_jsonl, summary_table, telemetry_decisions_jsonl,
    telemetry_metrics_jsonl, telemetry_trace_jsonl,
};
use softrate_scenario::spec::ScenarioSpec;
use softrate_scenario::{builtin, toml};
use softrate_telemetry::RecorderConfig;

fn usage() -> &'static str {
    "softrate-scenarios — declarative scenario engine for the SoftRate reproduction

USAGE:
    softrate-scenarios list
    softrate-scenarios show <name | --file spec.toml> [--expanded]
    softrate-scenarios run  <--name name | --file spec.toml> [--threads N]
                            [--shards N] [--batch on|off] [--out results.jsonl]
                            [--duration SECS] [--seed N] [--only RUN_IDX]
                            [--metrics metrics.jsonl] [--trace trace.jsonl]
                            [--decisions decisions.jsonl]
    softrate-scenarios sweep --file spec.toml [--threads N] [--shards N]
                            [--out results.jsonl] [--metrics metrics.jsonl]
                            [--trace trace.jsonl] [--decisions decisions.jsonl]

The scenario may be given as a bare positional name, `--name <builtin>`,
or `--file <spec.toml|spec.json>`.

`--metrics` turns on the telemetry recorder and writes per-station
interval/totals/histogram rows (deterministic JSONL, byte-identical
across thread counts). `--trace` additionally streams per-frame
lifecycle rows into the given file (implies --metrics if absent).
`--shards N` schedules each spatial run over N spatial domains (the
conservative parallel engine); results and every telemetry stream are
byte-identical to `--shards 1` — only the wall clock changes.
`--batch off` disables same-tick cohort batching in spatial runs
(cohort width 1 through the identical dispatch path); results are
byte-identical to the default `--batch on` — only the wall clock
changes.
`--decisions` streams the rate-decision ledger — one row per
rate-adaptation decision with trigger class and SNR/BER input — into the
given file. Inspect all three with `softrate-inspect`.

COMMANDS:
    list    Catalogue the built-in scenario library
    show    Print a scenario's TOML (with --expanded: every run in its matrix)
    run     Execute a scenario's full run matrix in parallel
    sweep   Like run, but requires the spec to declare [sweep] axes
"
}

struct Args {
    positional: Vec<String>,
    file: Option<String>,
    out: Option<String>,
    threads: Option<usize>,
    shards: Option<usize>,
    batch_off: bool,
    duration: Option<f64>,
    seed: Option<u64>,
    only: Option<usize>,
    expanded: bool,
    metrics: Option<String>,
    trace: Option<String>,
    decisions: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        file: None,
        out: None,
        threads: None,
        shards: None,
        batch_off: false,
        duration: None,
        seed: None,
        only: None,
        expanded: false,
        metrics: None,
        trace: None,
        decisions: None,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--file" | "-f" => args.file = Some(value_of("--file")?),
            "--name" | "-n" => args.positional.push(value_of("--name")?),
            "--out" | "-o" => args.out = Some(value_of("--out")?),
            "--threads" | "-j" => {
                args.threads = Some(
                    value_of("--threads")?
                        .parse()
                        .map_err(|_| "--threads must be an integer".to_string())?,
                )
            }
            "--shards" => {
                args.shards = Some(
                    value_of("--shards")?
                        .parse()
                        .map_err(|_| "--shards must be an integer".to_string())?,
                )
            }
            "--batch" => {
                args.batch_off = match value_of("--batch")?.as_str() {
                    "on" => false,
                    "off" => true,
                    other => return Err(format!("--batch takes on|off, not `{other}`")),
                }
            }
            "--duration" => {
                args.duration = Some(
                    value_of("--duration")?
                        .parse()
                        .map_err(|_| "--duration must be a number".to_string())?,
                )
            }
            "--seed" => {
                args.seed = Some(
                    value_of("--seed")?
                        .parse()
                        .map_err(|_| "--seed must be an integer".to_string())?,
                )
            }
            "--only" => {
                args.only = Some(
                    value_of("--only")?
                        .parse()
                        .map_err(|_| "--only must be a run index".to_string())?,
                )
            }
            "--metrics" => args.metrics = Some(value_of("--metrics")?),
            "--trace" => args.trace = Some(value_of("--trace")?),
            "--decisions" => args.decisions = Some(value_of("--decisions")?),
            "--expanded" => args.expanded = true,
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            name => args.positional.push(name.to_string()),
        }
    }
    Ok(args)
}

/// Loads the spec named by `--file` or the positional built-in name.
fn load_spec(args: &Args) -> Result<ScenarioSpec, String> {
    let mut spec = if let Some(path) = &args.file {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        engine::parse_spec(&text).map_err(|e| format!("{path}: {e}"))?
    } else if let Some(name) = args.positional.first() {
        builtin::get(name).map_err(|e| {
            let near = builtin::suggestions(name);
            let hint = if near.is_empty() {
                String::new()
            } else {
                format!("did you mean: {}?\n", near.join(", "))
            };
            format!("{e}\n{hint}available: {}", builtin::names().join(", "))
        })?
    } else {
        return Err("give a built-in scenario name or --file <spec>".to_string());
    };
    if let Some(d) = args.duration {
        spec.duration = d;
    }
    if let Some(s) = args.seed {
        spec.seed = s;
    }
    spec.validate().map_err(|e| e.to_string())?;
    Ok(spec)
}

fn cmd_list() -> Result<(), String> {
    println!("{:<18} {:>5}  description", "name", "runs");
    for name in builtin::names() {
        let spec = builtin::get(name).map_err(|e| e.to_string())?;
        let runs = expand(&spec).map_err(|e| e.to_string())?.len();
        println!(
            "{name:<18} {runs:>5}  {}",
            spec.description.as_deref().unwrap_or("")
        );
    }
    Ok(())
}

fn cmd_show(args: &Args) -> Result<(), String> {
    let spec = load_spec(args)?;
    if args.expanded {
        let plans = expand(&spec).map_err(|e| e.to_string())?;
        println!("# {} runs in the matrix of `{}`\n", plans.len(), spec.name);
        for plan in plans {
            let params: Vec<String> = plan
                .params
                .iter()
                .map(|(k, v)| format!("{k}={}", serde_json::to_string(v).unwrap_or_default()))
                .collect();
            println!(
                "run {:>4}  seed {:>20}  adapter {:<18} {}",
                plan.run_idx,
                plan.seed,
                plan.adapter.label(),
                params.join(" ")
            );
        }
    } else {
        print!("{}", spec.to_toml());
    }
    Ok(())
}

fn cmd_run(args: &Args, require_sweep: bool) -> Result<(), String> {
    let spec = load_spec(args)?;
    if require_sweep && spec.sweep.as_ref().is_none_or(|s| s.0.is_empty()) {
        return Err(format!(
            "`sweep` needs a spec with [sweep] axes; `{}` has none (use `run`)",
            spec.name
        ));
    }
    let mut plans = expand(&spec).map_err(|e| e.to_string())?;
    if let Some(idx) = args.only {
        let total = plans.len();
        plans.retain(|p| p.run_idx == idx);
        if plans.is_empty() {
            return Err(format!(
                "--only {idx} is out of range: the matrix has {total} runs (0..{})",
                total.saturating_sub(1)
            ));
        }
    }
    let threads = args.threads.map(|t| t.max(1));
    let shards = args.shards.unwrap_or(1).max(1);
    eprintln!(
        "scenario `{}`: {} runs x {:.1}s simulated, {} threads, {shards} shard(s)",
        spec.name,
        plans.len(),
        spec.duration,
        threads
            .map(|t| t.to_string())
            .unwrap_or_else(|| "auto".to_string()),
    );
    let telemetry = (args.metrics.is_some() || args.trace.is_some() || args.decisions.is_some())
        .then(|| RecorderConfig {
            trace: args.trace.is_some(),
            decisions: args.decisions.is_some(),
            ..RecorderConfig::default()
        });
    let started = std::time::Instant::now();
    let outcomes = engine::run_all_checked(
        &plans,
        &engine::RunOptions {
            threads,
            telemetry,
            shards,
            shard_workers: None,
            batch_off: args.batch_off,
        },
    );
    eprintln!("completed in {:.2}s", started.elapsed().as_secs_f64());
    // A panicking run is captured as a structured `kind: "error"` row
    // (in matrix order, alongside the healthy results) and the command
    // exits non-zero — the rest of the matrix still completes and every
    // requested output file is still written.
    let with_telemetry: Vec<_> = outcomes
        .iter()
        .filter_map(|o| o.as_ref().ok().cloned())
        .collect();
    let results: Vec<_> = with_telemetry.iter().map(|(r, _)| r.clone()).collect();
    print!("{}", summary_table(&results));
    let failures: Vec<_> = outcomes.iter().filter_map(|o| o.as_ref().err()).collect();
    for f in &failures {
        eprintln!("run {} ({}) PANICKED: {}", f.run_idx, f.adapter, f.error);
    }
    if let Some(out) = &args.out {
        write_file(out, &outcomes_to_jsonl(&outcomes))?;
    }
    if let Some(path) = &args.metrics {
        write_file(path, &telemetry_metrics_jsonl(&with_telemetry))?;
    }
    if let Some(path) = &args.trace {
        write_file(path, &telemetry_trace_jsonl(&with_telemetry))?;
    }
    if let Some(path) = &args.decisions {
        write_file(path, &telemetry_decisions_jsonl(&with_telemetry))?;
    }
    if !failures.is_empty() {
        return Err(format!(
            "{} of {} runs panicked (see their `kind: \"error\"` result rows)",
            failures.len(),
            outcomes.len()
        ));
    }
    Ok(())
}

/// Writes `text` to `path`, creating parent directories as needed.
fn write_file(path: &str, text: &str) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!("[wrote {path}]");
    Ok(())
}

/// Sanity helper for `show --file` on raw TOML that is not a scenario:
/// kept internal; surfaces parser line numbers to the user.
#[allow(dead_code)]
fn check_toml(text: &str) -> Result<(), String> {
    toml::parse(text).map(|_| ()).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = match parse_args(rest) {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "list" => cmd_list(),
        "show" => cmd_show(&args),
        "run" => cmd_run(&args, false),
        "sweep" => cmd_run(&args, true),
        "--help" | "-h" | "help" => {
            print!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
