//! Sweep expansion and the parallel run matrix executor.
//!
//! [`expand`] turns one scenario document into an ordered list of
//! [`RunPlan`]s: the cartesian product of every sweep axis (outermost axis
//! first) times the adapter list. [`run_all`] executes plans across a
//! thread pool with deterministic per-run seeding; because plan order,
//! per-run seeds, and result ordering are all independent of the worker
//! count, the JSON-lines output is **byte-identical across runs and thread
//! counts** — the property the determinism tests pin down.

use std::sync::Arc;

use serde::{Deserialize, Serialize, Value};
use softrate_adapt::snr::SnrTable;
use softrate_net::sim::{SpatialConfig, SpatialSim, SpatialTraffic};
use softrate_net::stream::mix_seed;
use softrate_sim::config::{AdapterKind, SimConfig, TrafficKind};
use softrate_sim::mac::RunReport;
use softrate_sim::netsim::NetSim;
use softrate_sim::transport::TransportConfig;
use softrate_telemetry::{RecorderConfig, TelemetryReport};
use softrate_trace::par::par_map_threads;
use softrate_trace::schema::LinkTrace;
use softrate_trace::snr_training::{observations_from_trace, train_snr_table};

use crate::channelgen::build_trace;
use crate::spec::{AdapterSpec, Direction, ScenarioSpec, SpecError, TrafficModel};
use crate::toml;

/// One fully resolved run: a concrete spec point plus one adapter.
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// Position in the expanded matrix (stable across thread counts).
    pub run_idx: usize,
    /// The spec with all sweep substitutions applied (its own `sweep` is
    /// cleared).
    pub spec: ScenarioSpec,
    /// Adapter under test in this run.
    pub adapter: AdapterSpec,
    /// The swept `(param, value)` assignments that produced this point.
    pub params: Vec<(String, Value)>,
    /// This run's derived seed.
    pub seed: u64,
}

/// One run's results — one JSON line in the sink.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Scenario name.
    pub scenario: String,
    /// Matrix position.
    pub run_idx: usize,
    /// Adapter label.
    pub adapter: String,
    /// Swept parameter assignments.
    pub params: Vec<(String, Value)>,
    /// The run's seed (reproduce with `run --only <idx>`).
    pub seed: u64,
    /// Simulated seconds.
    pub duration: f64,
    /// Aggregate goodput over all flows, bit/s.
    pub goodput_bps: f64,
    /// Per-flow goodput, bit/s.
    pub per_flow_goodput_bps: Vec<f64>,
    /// Data frames transmitted on the air.
    pub frames_sent: u64,
    /// Data frames delivered intact.
    pub frames_delivered: u64,
    /// Frame loss rate on the air.
    pub loss_rate: f64,
    /// Frames corrupted by MAC-level collisions.
    pub collisions: u64,
    /// Attempts with no feedback at all.
    pub silent_losses: u64,
    /// Fraction of audited frames sent above the oracle rate.
    pub overselect: f64,
    /// Fraction sent exactly at the oracle rate.
    pub accurate: f64,
    /// Fraction sent below the oracle rate.
    pub underselect: f64,
    /// Completed handoffs (spatial topologies only; 0 otherwise).
    pub handoffs: u64,
}

/// Sets `value` at a dotted `path` inside a map-rooted document, creating
/// intermediate maps as needed.
fn set_path(doc: &mut Value, path: &str, value: Value) -> Result<(), SpecError> {
    let mut cur = doc;
    let segments: Vec<&str> = path.split('.').collect();
    for (i, seg) in segments.iter().enumerate() {
        let Value::Map(m) = cur else {
            return Err(SpecError(format!(
                "sweep parameter `{path}`: `{}` is not a table",
                segments[..i].join(".")
            )));
        };
        if i + 1 == segments.len() {
            if let Some(entry) = m.iter_mut().find(|(k, _)| k == seg) {
                entry.1 = value;
            } else {
                m.push((seg.to_string(), value));
            }
            return Ok(());
        }
        if !m.iter().any(|(k, _)| k == *seg) {
            m.push((seg.to_string(), Value::Map(Vec::new())));
        }
        cur = &mut m
            .iter_mut()
            .find(|(k, _)| k == *seg)
            .expect("just ensured")
            .1;
    }
    unreachable!("empty path rejected by split")
}

/// Reads the value at a dotted `path`, if present.
fn get_path<'a>(doc: &'a Value, path: &str) -> Option<&'a Value> {
    let mut cur = doc;
    for seg in path.split('.') {
        cur = cur.get(seg)?;
    }
    Some(cur)
}

/// Structural equality that treats numeric kinds as interchangeable, so a
/// swept `[1, 2]` matches the `1.0` a float field echoes back.
fn values_equivalent(a: &Value, b: &Value) -> bool {
    fn as_f64(v: &Value) -> Option<f64> {
        match v {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }
    match (as_f64(a), as_f64(b)) {
        (Some(x), Some(y)) => x == y,
        _ => match (a, b) {
            (Value::Seq(xs), Value::Seq(ys)) => {
                xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| values_equivalent(x, y))
            }
            (Value::Map(xs), Value::Map(ys)) => {
                xs.len() == ys.len()
                    && xs
                        .iter()
                        .all(|(k, x)| ys.iter().any(|(k2, y)| k == k2 && values_equivalent(x, y)))
            }
            _ => a == b,
        },
    }
}

/// Expands a scenario into its ordered run matrix.
pub fn expand(spec: &ScenarioSpec) -> Result<Vec<RunPlan>, SpecError> {
    spec.validate()?;
    let axes = spec.sweep.as_ref().map(|s| s.0.clone()).unwrap_or_default();
    let mut doc = spec.to_value();
    // The expanded points must not re-expand.
    if let Value::Map(m) = &mut doc {
        m.retain(|(k, _)| k != "sweep");
    }

    // Cartesian product, first axis outermost.
    let combos = axes
        .iter()
        .map(|a| a.values.len())
        .product::<usize>()
        .max(1);
    let mut plans = Vec::new();
    for combo in 0..combos {
        let mut point = doc.clone();
        let mut params = Vec::new();
        let mut rem = combo;
        // First axis varies slowest: divide from the right.
        let mut strides = vec![1usize; axes.len()];
        for i in (0..axes.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * axes[i + 1].values.len();
        }
        for (axis, stride) in axes.iter().zip(&strides) {
            let idx = rem / stride;
            rem %= stride;
            let value = axis.values[idx].clone();
            set_path(&mut point, &axis.param, value.clone())?;
            params.push((axis.param.clone(), value));
        }
        let point_spec = ScenarioSpec::from_value(&point)
            .map_err(|e| SpecError(format!("sweep point {combo}: {e}")))?;
        point_spec.validate()?;
        // A typo'd axis path would be silently dropped by deserialization
        // (unknown fields are ignored), leaving every sweep point identical
        // while the params column claims variation. Re-serialize the typed
        // spec and check each swept value actually landed on a real field.
        let landed = point_spec.to_value();
        for (param, value) in &params {
            match get_path(&landed, param) {
                Some(v) if values_equivalent(v, value) => {}
                Some(v) => {
                    return Err(SpecError(format!(
                        "sweep parameter `{param}`: value {} did not take effect \
                         (spec field holds {})",
                        render_value(value),
                        render_value(v)
                    )));
                }
                None => {
                    return Err(SpecError(format!(
                        "sweep parameter `{param}` does not name a spec field \
                         (typo? see `ScenarioSpec` for valid paths)"
                    )));
                }
            }
        }
        for adapter in point_spec.adapters() {
            let run_idx = plans.len();
            plans.push(RunPlan {
                run_idx,
                spec: point_spec.clone(),
                adapter,
                params: params.clone(),
                seed: mix_seed(spec.seed, run_idx as u64),
            });
        }
    }
    Ok(plans)
}

/// Builds the per-link traces for one run (2 per client: up, down).
///
/// Channel realizations derive from the *spec* seed (not the per-run
/// seed), so every run in a matrix that shares channel parameters sees
/// the same traces — the paper's comparison methodology (§6.1: all
/// adapters are evaluated over identical channel realizations). Runs
/// whose sweep point changes the channel get different traces through the
/// changed parameters themselves; only MAC/transport randomness varies
/// with the per-run seed. This also lets the PHY backend's on-disk cache
/// serve a whole adapter axis from one generation pass.
fn traces_for(plan: &RunPlan) -> Vec<Arc<LinkTrace>> {
    let channel_seed = mix_seed(plan.spec.seed, 0xC4A2_17CE);
    (0..2 * plan.spec.n_clients())
        .map(|link| build_trace(&plan.spec, channel_seed, link))
        .collect()
}

/// Resolves an [`AdapterSpec`] to a simulator [`AdapterKind`], training SNR
/// tables on the run's own traces when no explicit table is given (the
/// paper's "trained in this environment" configuration).
fn resolve_adapter(adapter: &AdapterSpec, traces: &[Arc<LinkTrace>]) -> AdapterKind {
    let table = |explicit: &Option<Vec<f64>>| -> SnrTable {
        match explicit {
            Some(t) => SnrTable::new(t.clone()),
            None => {
                let mut obs = Vec::new();
                for t in traces {
                    obs.extend(observations_from_trace(t));
                }
                train_snr_table(&obs)
            }
        }
    };
    match adapter {
        AdapterSpec::SoftRate => AdapterKind::SoftRate,
        AdapterSpec::SoftRateIdeal => AdapterKind::SoftRateIdeal,
        AdapterSpec::SoftRateNoDetect => AdapterKind::SoftRateNoDetect,
        AdapterSpec::SampleRate => AdapterKind::SampleRate,
        AdapterSpec::Rraa => AdapterKind::Rraa,
        AdapterSpec::Snr { table: t } => AdapterKind::Snr(table(t)),
        AdapterSpec::Charm { table: t } => AdapterKind::Charm(table(t)),
        AdapterSpec::Omniscient => AdapterKind::Omniscient,
        AdapterSpec::Fixed { rate_idx } => AdapterKind::Fixed(*rate_idx),
    }
}

/// Resolves an [`AdapterSpec`] without traces (spatial topologies): the
/// SNR/CHARM tables must be explicit, which spec validation guarantees.
fn resolve_adapter_traceless(adapter: &AdapterSpec) -> AdapterKind {
    match adapter {
        AdapterSpec::Snr { table: Some(t) } => AdapterKind::Snr(SnrTable::new(t.clone())),
        AdapterSpec::Charm { table: Some(t) } => AdapterKind::Charm(SnrTable::new(t.clone())),
        other => resolve_adapter(other, &[]),
    }
}

/// Builds one JSONL row from a plan and the unified engine report — both
/// simulators now speak [`RunReport`], so one constructor serves the
/// trace-backed and spatial paths alike.
fn result_from_report(plan: &RunPlan, report: RunReport) -> RunResult {
    let (over, accurate, under) = report.audit.fractions();
    RunResult {
        scenario: plan.spec.name.clone(),
        run_idx: plan.run_idx,
        adapter: plan.adapter.label(),
        params: plan.params.clone(),
        seed: plan.seed,
        duration: plan.spec.duration,
        goodput_bps: report.aggregate_goodput_bps,
        per_flow_goodput_bps: report.per_flow_goodput_bps,
        frames_sent: report.frames_sent,
        frames_delivered: report.frames_delivered,
        loss_rate: if report.frames_sent == 0 {
            0.0
        } else {
            1.0 - report.frames_delivered as f64 / report.frames_sent as f64
        },
        collisions: report.collisions,
        silent_losses: report.silent_losses,
        overselect: over,
        accurate,
        underselect: under,
        handoffs: report.handoffs,
    }
}

/// Maps the scenario traffic model onto the simulator's kind.
fn traffic_kind(model: TrafficModel) -> TrafficKind {
    match model {
        TrafficModel::Tcp => TrafficKind::Tcp,
        TrafficModel::UdpBulk => TrafficKind::UdpBulk,
        TrafficModel::OnOff {
            rate_pps,
            on_s,
            off_s,
        } => TrafficKind::OnOff {
            rate_pps,
            on_s,
            off_s,
        },
    }
}

/// The spatial workload for a plan: saturated uplink UDP stays on the
/// medium's native zero-queue fast path (byte-identical to the
/// pre-transport subsystem); everything else rides the shared
/// [`softrate_sim::transport::TransportLayer`] over the
/// [`TransportConfig::enterprise`] backhaul.
fn spatial_traffic(plan: &RunPlan) -> SpatialTraffic {
    let spec = &plan.spec;
    match (spec.traffic.kind, spec.direction()) {
        (TrafficModel::UdpBulk, Direction::Upload) => SpatialTraffic::SaturatedUplinkUdp,
        (kind, dir) => {
            let mut tc = TransportConfig::enterprise(
                traffic_kind(kind),
                matches!(dir, Direction::Upload),
                plan.seed,
            );
            if let Some(cap) = spec.topology.queue_cap {
                tc.queue_cap = cap;
            }
            SpatialTraffic::Flows(tc)
        }
    }
}

/// Executes one spatial plan on the streaming multi-cell simulator.
///
/// The spatial seed derives from the *spec* seed (not the per-run seed)
/// for the same reason single-cell traces do: every adapter in a matrix
/// shares one deployment — station spawns, trajectories, and fading — so
/// algorithms are compared over identical channel realizations (§6.1).
fn run_spatial_plan(
    plan: &RunPlan,
    telemetry: Option<&RecorderConfig>,
    shards: usize,
    shard_workers: Option<usize>,
    batch: bool,
) -> (RunResult, Option<TelemetryReport>) {
    let spec = &plan.spec;
    let mut spatial = spec
        .topology
        .spatial
        .clone()
        .expect("spatial plan has a spatial topology");
    // `channel.snr_db` is the reference SNR at 1 m unless the spatial
    // table overrides it — one consistent meaning for the field.
    spatial.snr_ref_db = Some(spatial.snr_ref_db.unwrap_or(spec.channel.snr_db));
    let mut cfg = SpatialConfig::new(resolve_adapter_traceless(&plan.adapter), spatial);
    cfg.duration = spec.duration;
    cfg.seed = mix_seed(spec.seed, 0x5A7A_11CE);
    cfg.mac_seed = plan.seed;
    cfg.traffic = spatial_traffic(plan);
    // A present-but-empty [faults] table lowers to None here, keeping the
    // faults-off engine path provably untouched.
    cfg.faults = spec.faults.map(|f| f.lower()).filter(|f| !f.is_noop());
    cfg.telemetry = telemetry.cloned();
    cfg.shards = shards.max(1);
    cfg.shard_workers = shard_workers;
    cfg.batch = batch;
    let report = SpatialSim::new(cfg)
        .expect("validated spatial spec resolves")
        .run();
    finish_report(plan, report)
}

/// Splits the engine report into the JSONL result row and the (stamped)
/// telemetry report.
fn finish_report(plan: &RunPlan, mut report: RunReport) -> (RunResult, Option<TelemetryReport>) {
    let mut telemetry = report.telemetry.take();
    if let Some(t) = telemetry.as_mut() {
        t.stamp_run_idx(plan.run_idx as u64);
    }
    (result_from_report(plan, report), telemetry)
}

/// Executes one plan, optionally with the telemetry recorder attached.
///
/// With `telemetry: None` the recorder is never constructed and the run is
/// bit-identical to the pre-telemetry engine.
pub fn run_plan_with_telemetry(
    plan: &RunPlan,
    telemetry: Option<&RecorderConfig>,
) -> (RunResult, Option<TelemetryReport>) {
    run_plan_with_options(
        plan,
        &RunOptions {
            telemetry: telemetry.cloned(),
            ..RunOptions::default()
        },
    )
}

/// Execution options for a plan matrix, beyond the plans themselves.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Worker threads across the matrix (`None`: the machine's
    /// parallelism).
    pub threads: Option<usize>,
    /// Telemetry recorder per run; `None` never constructs a recorder.
    pub telemetry: Option<RecorderConfig>,
    /// Spatial domains for the conservative parallel scheduler — spatial
    /// topologies only, single-cell runs ignore it. `0`/`1` runs the
    /// sequential engine; every value produces byte-identical results
    /// (the shard-invariance suite pins it).
    pub shards: usize,
    /// Cap on shard-pool worker threads per run, or `None` to size
    /// automatically: [`run_all_with_options`] divides the host's cores
    /// between the matrix workers so `threads` × `shards` never
    /// oversubscribes. Sizing only — results are byte-identical.
    pub shard_workers: Option<usize>,
    /// Disable same-tick cohort batching in spatial runs (the `--batch
    /// off` escape hatch): cohort width 1 through the identical dispatch
    /// path, byte-identical results (the equality suite pins it). The
    /// `false` default keeps the batched hot path on.
    pub batch_off: bool,
}

/// [`run_plan_with_telemetry`] with the full option set.
pub fn run_plan_with_options(
    plan: &RunPlan,
    opts: &RunOptions,
) -> (RunResult, Option<TelemetryReport>) {
    let telemetry = opts.telemetry.as_ref();
    if plan.spec.topology.spatial.is_some() {
        return run_spatial_plan(
            plan,
            telemetry,
            opts.shards,
            opts.shard_workers,
            !opts.batch_off,
        );
    }
    let traces = traces_for(plan);
    let spec = &plan.spec;
    let mut cfg = SimConfig::new(resolve_adapter(&plan.adapter, &traces), spec.n_clients());
    cfg.duration = spec.duration;
    cfg.upload = matches!(spec.direction(), Direction::Upload);
    cfg.carrier_sense_prob = spec.carrier_sense_prob();
    cfg.traffic = traffic_kind(spec.traffic.kind);
    if let Some(cap) = spec.topology.queue_cap {
        cfg.queue_cap = cap;
    }
    cfg.seed = plan.seed;
    cfg.telemetry = telemetry.cloned();
    // Hint corruption is the only fault class the single-cell medium
    // honours (validation rejects the geometric ones); zero-effect
    // settings lower to None so the seam stays untouched.
    cfg.hint_faults = spec
        .faults
        .and_then(|f| f.lower().hint)
        .filter(|h| h.drop_prob > 0.0 || h.quantize_db > 0.0);

    let report = NetSim::new(cfg, traces).run();
    finish_report(plan, report)
}

/// Executes one plan.
pub fn run_plan(plan: &RunPlan) -> RunResult {
    run_plan_with_telemetry(plan, None).0
}

/// One structured JSONL row for a run that panicked instead of
/// completing. The leading `kind: "error"` discriminates it from
/// [`RunResult`] rows (which have no `kind`) in a mixed results file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailedRunRow {
    /// Always `"error"` — the row discriminator.
    pub kind: String,
    /// Scenario name.
    pub scenario: String,
    /// Matrix position of the failed run.
    pub run_idx: usize,
    /// Adapter label.
    pub adapter: String,
    /// Swept parameter assignments.
    pub params: Vec<(String, Value)>,
    /// The run's seed (reproduce with `run --only <idx>`).
    pub seed: u64,
    /// The panic message.
    pub error: String,
}

/// What one checked run produced: a result (plus telemetry), or the
/// structured record of its panic (boxed — the failure path is cold and
/// the row is bigger than the hot `Ok` tuple's pointer budget).
pub type RunOutcome = Result<(RunResult, Option<TelemetryReport>), Box<FailedRunRow>>;

/// Renders a panic payload (the `Box<dyn Any>` from `catch_unwind`) as
/// text; `panic!` with a literal gives `&str`, with `format!` a `String`.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// [`run_plan_with_options`], but a panicking engine yields a
/// [`FailedRunRow`] instead of tearing down the whole matrix. The
/// `AssertUnwindSafe` is sound because the run's entire mutable state is
/// constructed inside the closure and abandoned on unwind — nothing
/// shared survives to observe a broken invariant.
pub fn run_plan_checked(plan: &RunPlan, opts: &RunOptions) -> RunOutcome {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_plan_with_options(plan, opts)
    }))
    .map_err(|payload| {
        Box::new(FailedRunRow {
            kind: "error".into(),
            scenario: plan.spec.name.clone(),
            run_idx: plan.run_idx,
            adapter: plan.adapter.label(),
            params: plan.params.clone(),
            seed: plan.seed,
            error: panic_message(payload.as_ref()),
        })
    })
}

/// Crash-proof [`run_all_with_options`]: every plan runs to completion
/// or to a captured panic; one bad run never costs the rest of the
/// matrix. Outcomes come back in matrix order (byte-identical across
/// thread counts, like everything else here). Callers decide the exit
/// status — `softrate-scenarios run` exits non-zero if any row failed.
pub fn run_all_checked(plans: &[RunPlan], opts: &RunOptions) -> Vec<RunOutcome> {
    let opts = size_shard_workers(plans, opts);
    par_map_threads(
        opts.threads.unwrap_or_else(default_threads),
        plans.to_vec(),
        move |plan| run_plan_checked(&plan, &opts),
    )
}

/// Serializes checked outcomes as JSON-lines in matrix order: result
/// rows for completed runs, `kind: "error"` rows for panicked ones.
pub fn outcomes_to_jsonl(outcomes: &[RunOutcome]) -> String {
    let mut out = String::new();
    for o in outcomes {
        let line = match o {
            Ok((r, _)) => serde_json::to_string(r).expect("results serialize"),
            Err(f) => serde_json::to_string(f.as_ref()).expect("failed-run rows serialize"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Executes every plan across `threads` workers (defaulting to the
/// machine's parallelism), returning results in matrix order.
pub fn run_all(plans: &[RunPlan], threads: Option<usize>) -> Vec<RunResult> {
    run_all_with_telemetry(plans, threads, None)
        .into_iter()
        .map(|(r, _)| r)
        .collect()
}

/// [`run_all`] with an optional telemetry recorder per run. Results (and
/// their telemetry reports) come back in matrix order regardless of the
/// worker count, so the concatenated metrics/trace JSONL streams are
/// byte-identical across thread counts.
pub fn run_all_with_telemetry(
    plans: &[RunPlan],
    threads: Option<usize>,
    telemetry: Option<RecorderConfig>,
) -> Vec<(RunResult, Option<TelemetryReport>)> {
    run_all_with_options(
        plans,
        &RunOptions {
            threads,
            telemetry,
            shards: 1,
            shard_workers: None,
            batch_off: false,
        },
    )
}

/// [`run_all_with_telemetry`] with the full option set (notably
/// `shards`, the spatial scheduler's domain count — results stay
/// byte-identical for every value).
pub fn run_all_with_options(
    plans: &[RunPlan],
    opts: &RunOptions,
) -> Vec<(RunResult, Option<TelemetryReport>)> {
    let opts = size_shard_workers(plans, opts);
    par_map_threads(
        opts.threads.unwrap_or_else(default_threads),
        plans.to_vec(),
        move |plan| run_plan_with_options(&plan, &opts),
    )
}

/// The host's available parallelism (the `threads: None` default).
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Resolves the automatic shard-pool sizing: sharded runs executing
/// concurrently must share the machine, so each matrix worker gets an
/// equal slice of the cores (minus the worker itself, which also
/// dispatches) and `threads` × `shards` never spawns more pool threads
/// than the host has.
fn size_shard_workers(plans: &[RunPlan], opts: &RunOptions) -> RunOptions {
    let cores = default_threads();
    let threads = opts.threads.unwrap_or(cores);
    let mut opts = opts.clone();
    if opts.shards > 1 && opts.shard_workers.is_none() {
        let concurrent = threads.min(plans.len()).max(1);
        if concurrent > 1 {
            opts.shard_workers = Some((cores / concurrent).saturating_sub(1));
        }
    }
    opts
}

/// Concatenates the per-run metrics JSONL streams in matrix order.
pub fn telemetry_metrics_jsonl(results: &[(RunResult, Option<TelemetryReport>)]) -> String {
    results
        .iter()
        .filter_map(|(_, t)| t.as_ref())
        .map(TelemetryReport::metrics_jsonl)
        .collect()
}

/// Concatenates the per-run frame-trace JSONL streams in matrix order.
pub fn telemetry_trace_jsonl(results: &[(RunResult, Option<TelemetryReport>)]) -> String {
    results
        .iter()
        .filter_map(|(_, t)| t.as_ref())
        .map(TelemetryReport::trace_jsonl)
        .collect()
}

/// Concatenates the per-run rate-decision ledger JSONL streams in matrix
/// order.
pub fn telemetry_decisions_jsonl(results: &[(RunResult, Option<TelemetryReport>)]) -> String {
    results
        .iter()
        .filter_map(|(_, t)| t.as_ref())
        .map(TelemetryReport::decisions_jsonl)
        .collect()
}

/// Convenience: expand + run in one call.
pub fn run_spec(spec: &ScenarioSpec, threads: Option<usize>) -> Result<Vec<RunResult>, SpecError> {
    Ok(run_all(&expand(spec)?, threads))
}

/// Serializes results as JSON-lines (one run per line, trailing newline).
pub fn to_jsonl(results: &[RunResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&serde_json::to_string(r).expect("results serialize"));
        out.push('\n');
    }
    out
}

/// Parses a JSON-lines results file.
pub fn from_jsonl(text: &str) -> Result<Vec<RunResult>, SpecError> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).map_err(|e| SpecError(e.to_string())))
        .collect()
}

/// Renders a fixed-width summary table of a result set.
pub fn summary_table(results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>4}  {:<20} {:<28} {:>10} {:>7} {:>7} {:>16}\n",
        "run", "adapter", "params", "Mbit/s", "loss%", "coll", "over/acc/under"
    ));
    for r in results {
        let params: String = r
            .params
            .iter()
            .map(|(k, v)| {
                let short = k.rsplit('.').next().unwrap_or(k);
                format!("{short}={}", render_value(v))
            })
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&format!(
            "{:>4}  {:<20} {:<28} {:>10.2} {:>7.1} {:>7} {:>5.0}/{:.0}/{:.0}%\n",
            r.run_idx,
            r.adapter,
            params,
            r.goodput_bps / 1e6,
            r.loss_rate * 100.0,
            r.collisions,
            r.overselect * 100.0,
            r.accurate * 100.0,
            r.underselect * 100.0,
        ));
    }
    out
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        other => serde_json::to_string(other).unwrap_or_default(),
    }
}

/// Parses a scenario document from text, sniffing JSON vs TOML.
pub fn parse_spec(text: &str) -> Result<ScenarioSpec, SpecError> {
    if text.trim_start().starts_with('{') {
        ScenarioSpec::from_json(text)
    } else {
        ScenarioSpec::from_toml(text)
    }
}

/// Re-exported for spec-level tooling: parse a TOML document to a raw
/// [`Value`] (used by `softrate-scenarios show --expanded`).
pub fn parse_toml_value(text: &str) -> Result<Value, SpecError> {
    Ok(toml::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChannelModel, ChannelSpec, Sweep, SweepAxis, TopologySpec, TrafficSpec};
    use softrate_channel::model::FadingSpec;

    fn sweep_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "matrix".into(),
            description: None,
            duration: 0.5,
            seed: 99,
            topology: TopologySpec {
                n_clients: Some(1),
                carrier_sense_prob: None,
                queue_cap: None,
                spatial: None,
            },
            channel: ChannelSpec {
                model: ChannelModel::Analytic,
                snr_db: 15.0,
                fading: FadingSpec::None,
                attenuation: None,
                interference: None,
                probe_interval: None,
            },
            traffic: TrafficSpec {
                kind: TrafficModel::Tcp,
                direction: None,
            },
            faults: None,
            adapters: Some(vec![AdapterSpec::SoftRate, AdapterSpec::Omniscient]),
            sweep: Some(Sweep(vec![
                SweepAxis {
                    param: "channel.snr_db".into(),
                    values: vec![Value::Float(10.0), Value::Float(16.0), Value::Float(22.0)],
                },
                SweepAxis {
                    param: "topology.n_clients".into(),
                    values: vec![Value::Int(1), Value::Int(2)],
                },
            ])),
        }
    }

    #[test]
    fn expansion_cardinality_is_cartesian_times_adapters() {
        let plans = expand(&sweep_spec()).unwrap();
        // 3 SNRs x 2 client counts x 2 adapters.
        assert_eq!(plans.len(), 12);
        // First axis outermost: the first 4 plans share snr 10.
        for p in &plans[..4] {
            assert_eq!(p.spec.channel.snr_db, 10.0);
        }
        assert_eq!(plans[4].spec.channel.snr_db, 16.0);
        // Params record the assignment.
        assert_eq!(plans[0].params[0].0, "channel.snr_db");
        assert_eq!(plans[1].spec.n_clients(), 1);
        assert_eq!(plans[2].spec.n_clients(), 2);
        // Expanded points carry no sweep of their own.
        assert!(plans[0].spec.sweep.is_none());
        // Seeds are distinct per run (sort first: dedup is adjacent-only).
        let mut seeds: Vec<u64> = plans.iter().map(|p| p.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 12);
    }

    #[test]
    fn unknown_sweep_path_errors() {
        let mut s = sweep_spec();
        s.sweep = Some(Sweep(vec![SweepAxis {
            param: "channel.snr_db.deeper".into(),
            values: vec![Value::Int(1)],
        }]));
        assert!(expand(&s).is_err());
    }

    #[test]
    fn sweep_point_with_invalid_value_errors() {
        let mut s = sweep_spec();
        s.sweep = Some(Sweep(vec![SweepAxis {
            param: "topology.n_clients".into(),
            values: vec![Value::Int(0)],
        }]));
        assert!(
            expand(&s).is_err(),
            "n_clients = 0 must fail point validation"
        );
    }

    #[test]
    fn results_are_deterministic_across_thread_counts() {
        let mut s = sweep_spec();
        // Shrink: 2 snrs x 1 adapter for speed.
        s.adapters = Some(vec![AdapterSpec::SoftRate]);
        s.sweep = Some(Sweep(vec![SweepAxis {
            param: "channel.snr_db".into(),
            values: vec![Value::Float(12.0), Value::Float(20.0)],
        }]));
        let plans = expand(&s).unwrap();
        let a = to_jsonl(&run_all(&plans, Some(1)));
        let b = to_jsonl(&run_all(&plans, Some(4)));
        let c = to_jsonl(&run_all(&plans, Some(4)));
        assert_eq!(a, b, "thread count must not change results");
        assert_eq!(b, c, "repeat runs must be byte-identical");
        let parsed = from_jsonl(&a).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!(parsed.iter().all(|r| r.goodput_bps > 0.0));
    }

    #[test]
    fn goodput_tracks_snr_across_the_sweep() {
        let mut s = sweep_spec();
        s.adapters = Some(vec![AdapterSpec::Omniscient]);
        s.sweep = Some(Sweep(vec![SweepAxis {
            param: "channel.snr_db".into(),
            values: vec![Value::Float(6.0), Value::Float(20.0)],
        }]));
        let results = run_spec(&s, Some(2)).unwrap();
        assert!(
            results[1].goodput_bps > 1.5 * results[0].goodput_bps,
            "20 dB ({}) must beat 6 dB ({})",
            results[1].goodput_bps,
            results[0].goodput_bps
        );
    }

    #[test]
    fn udp_bulk_runs_and_reports() {
        let mut s = sweep_spec();
        s.traffic.kind = TrafficModel::UdpBulk;
        s.adapters = Some(vec![AdapterSpec::Fixed { rate_idx: 3 }]);
        s.sweep = None;
        let results = run_spec(&s, Some(1)).unwrap();
        assert_eq!(results.len(), 1);
        assert!(
            results[0].goodput_bps > 1e6,
            "saturated UDP at 15 dB should move megabits ({})",
            results[0].goodput_bps
        );
        assert!(results[0].frames_sent > 0);
    }

    #[test]
    fn checked_matrix_survives_a_panicking_run() {
        use softrate_net::mobility::MobilitySpec;
        use softrate_net::spatial::SpatialSpec;
        let mut s = sweep_spec();
        s.adapters = Some(vec![AdapterSpec::SoftRate]);
        s.sweep = None;
        let mut plans = expand(&s).unwrap();
        assert_eq!(plans.len(), 1);
        // Hand-build a poisoned plan (expand would reject its spec): a
        // spatial topology that fails to resolve trips the engine's
        // "validated spatial spec resolves" expect — a real panic, not a
        // simulated one.
        let mut bad = plans[0].clone();
        bad.run_idx = 1;
        bad.spec.topology.spatial = Some(SpatialSpec {
            ap_cols: 1,
            ap_rows: 1,
            ap_spacing_m: 30.0,
            n_stations: 0,
            snr_ref_db: None,
            path_loss_exp: None,
            sense_snr_db: None,
            capture_sir_db: None,
            doppler_hz: None,
            mobility: MobilitySpec::Static,
            roaming: None,
        });
        plans.push(bad);

        let outcomes = run_all_checked(&plans, &RunOptions::default());
        assert_eq!(outcomes.len(), 2, "the panic must not kill the matrix");
        assert!(outcomes[0].is_ok(), "the healthy run completes");
        let failed = outcomes[1].as_ref().expect_err("poisoned run fails");
        assert_eq!(failed.kind, "error");
        assert_eq!(failed.run_idx, 1);
        assert_eq!(failed.seed, plans[1].seed);
        assert!(!failed.error.is_empty(), "panic message captured");

        let jsonl = outcomes_to_jsonl(&outcomes);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            !lines[0].contains("\"kind\""),
            "result rows carry no kind discriminator"
        );
        assert!(lines[1].contains("\"kind\":\"error\""));
        // The healthy row still parses as a RunResult.
        let parsed: RunResult = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(parsed.run_idx, 0);
    }

    #[test]
    fn jsonl_roundtrip() {
        let mut s = sweep_spec();
        s.adapters = Some(vec![AdapterSpec::SoftRate]);
        s.sweep = None;
        let results = run_spec(&s, Some(1)).unwrap();
        let text = to_jsonl(&results);
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back.len(), results.len());
        assert_eq!(back[0].adapter, results[0].adapter);
        assert_eq!(back[0].goodput_bps, results[0].goodput_bps);
        assert!(!summary_table(&results).is_empty());
    }
}
