//! # softrate-scenario — the declarative, parallel scenario engine
//!
//! The single entry point for running experiments over the SoftRate
//! reproduction. A scenario is *data* — a TOML (or JSON) document
//! describing topology, channel, traffic, adapters, duration, and seed —
//! and optionally a sweep of parameter axes that expands into a cartesian
//! run matrix:
//!
//! ```toml
//! name = "demo"
//! duration = 2.0
//! seed = 7
//! adapters = ["SoftRate", "Rraa"]
//!
//! [topology]
//! n_clients = 1
//!
//! [channel]
//! model = "Analytic"
//! snr_db = 18.0
//!
//! [channel.fading.Flat]
//! doppler_hz = 40.0
//!
//! [traffic]
//! kind = "Tcp"
//!
//! [sweep]
//! "channel.snr_db" = [12.0, 18.0, 24.0]
//! ```
//!
//! * [`spec`] — the schema ([`spec::ScenarioSpec`] and friends).
//! * [`toml`] — the TOML front-end over the serde `Value` model.
//! * [`channelgen`] — spec → per-link [`softrate_trace::schema::LinkTrace`]
//!   (closed-form analytic model over real Jakes fading, or the full PHY
//!   with on-disk caching).
//! * [`engine`] — sweep expansion, the parallel runner, and the JSON-lines
//!   results sink. Output is byte-identical across repeat runs and thread
//!   counts.
//! * [`builtin`] — a curated library of ready-to-run scenarios
//!   (`softrate-scenarios list`).
//!
//! The `softrate-scenarios` binary exposes all of it from the command
//! line: `list | show | run | sweep`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builtin;
pub mod channelgen;
pub mod engine;
pub mod spec;
pub mod toml;

/// Convenient glob-import of the most common items.
pub mod prelude {
    pub use crate::builtin;
    pub use crate::engine::{expand, run_all, run_spec, to_jsonl, RunPlan, RunResult};
    pub use crate::spec::{
        AdapterSpec, ChannelModel, ChannelSpec, Direction, ScenarioSpec, Sweep, SweepAxis,
        TopologySpec, TrafficModel, TrafficSpec,
    };
}
