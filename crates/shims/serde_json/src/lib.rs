//! Offline stand-in for `serde_json` (see `crates/shims/README.md`).
//!
//! Serializes the serde shim's `Value` tree to JSON and parses JSON back.
//! Output is deterministic: map order is insertion order and floats use
//! Rust's shortest-roundtrip `Display` (non-finite floats become `null`,
//! as in real serde_json).

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

// --- writer -----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // Keep floats recognizable as floats on re-parse (real
                // serde_json does the same via ryu): 3 -> "3.0".
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_delimited(
                out,
                indent,
                level,
                '[',
                ']',
                items.len(),
                |out, i, ind, lvl| {
                    write_value(out, &items[i], ind, lvl);
                },
            );
        }
        Value::Map(entries) => {
            write_delimited(
                out,
                indent,
                level,
                '{',
                '}',
                entries.len(),
                |out, i, ind, lvl| {
                    write_string(out, &entries[i].0);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    write_value(out, &entries[i].1, ind, lvl);
                },
            );
        }
    }
}

fn write_delimited(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        item(out, i, indent, level + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser -----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a JSON document into a `Value`.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for text in ["null", "true", "false", "42", "-7", "1.5", "\"hi\\n\""] {
            let v = parse_value(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn nested_roundtrip() {
        let text = r#"{"a":[1,2.5,null],"b":{"c":"x y","d":[]}}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn pretty_output_shape() {
        let v = parse_value(r#"{"a":[1]}"#).unwrap();
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn typed_roundtrip() {
        let v: Vec<(String, f64)> = from_str(r#"[["x",1.25],["y",3]]"#).unwrap();
        assert_eq!(v, vec![("x".to_string(), 1.25), ("y".to_string(), 3.0)]);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value("{not json").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(from_str::<bool>("3").is_err());
    }

    #[test]
    fn float_formatting_is_shortest_roundtrip() {
        let v = Value::Float(0.1 + 0.2);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "0.30000000000000004");
        assert_eq!(parse_value(&s).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse_value("\"héllo ☃\"").unwrap();
        assert_eq!(v, Value::Str("héllo ☃".to_string()));
    }
}
