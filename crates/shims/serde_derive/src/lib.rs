//! Offline stand-in for `serde_derive` (see `crates/shims/README.md`).
//!
//! Hand-rolled over `proc_macro` (no `syn`/`quote`): parses the token
//! stream of a non-generic `struct` with named fields or an `enum` whose
//! variants are unit / named-field / tuple shaped, and emits impls of the
//! serde shim's `Serialize` / `Deserialize` traits using the same
//! externally-tagged enum representation as real serde.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives the serde shim's `Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Struct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", pairs.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_arm(&name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Derives the serde shim's `Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Struct(fields) => format!(
            "let m = ::serde::struct_map(v, \"{name}\")?;\n\
             ::std::result::Result::Ok({name} {{ {} }})",
            fields
                .iter()
                .map(|f| de_field(&name, f, "m"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| de_arm(&name, v)).collect();
            format!(
                "let (tag, inner) = ::serde::enum_tag(v, \"{name}\")?;\n\
                 let _ = &inner;\n\
                 match tag {{ {} _ => ::std::result::Result::Err(\
                     ::serde::DeError::unknown_variant(\"{name}\", tag)) }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}

/// One `match self` arm of a Serialize impl.
fn ser_arm(name: &str, v: &Variant) -> String {
    let tag = &v.name;
    match &v.kind {
        VariantKind::Unit => {
            format!("{name}::{tag} => ::serde::Value::Str(::std::string::String::from(\"{tag}\")),")
        }
        VariantKind::Named(fields) => {
            let binds = fields.join(", ");
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{name}::{tag} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                     (::std::string::String::from(\"{tag}\"), \
                      ::serde::Value::Map(::std::vec![{}]))]),",
                pairs.join(", ")
            )
        }
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
            let payload = if *n == 1 {
                "::serde::Serialize::to_value(x0)".to_string()
            } else {
                format!(
                    "::serde::Value::Seq(::std::vec![{}])",
                    binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            format!(
                "{name}::{tag}({}) => ::serde::Value::Map(::std::vec![\
                     (::std::string::String::from(\"{tag}\"), {payload})]),",
                binds.join(", ")
            )
        }
    }
}

/// One `match tag` arm of a Deserialize impl.
fn de_arm(name: &str, v: &Variant) -> String {
    let tag = &v.name;
    match &v.kind {
        VariantKind::Unit => {
            format!("\"{tag}\" => ::std::result::Result::Ok({name}::{tag}),")
        }
        VariantKind::Named(fields) => format!(
            "\"{tag}\" => {{\n\
                 let fm = ::serde::struct_map(inner, \"{name}::{tag}\")?;\n\
                 ::std::result::Result::Ok({name}::{tag} {{ {} }})\n\
             }},",
            fields
                .iter()
                .map(|f| de_field(&format!("{name}::{tag}"), f, "fm"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        VariantKind::Tuple(n) if *n == 1 => format!(
            "\"{tag}\" => ::std::result::Result::Ok({name}::{tag}(\
                 ::serde::Deserialize::from_value(inner)\
                     .map_err(|e| e.at(\"{name}::{tag}\"))?)),"
        ),
        VariantKind::Tuple(n) => format!(
            "\"{tag}\" => {{\n\
                 let s = ::serde::seq(inner, \"{name}::{tag}\")?;\n\
                 if s.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::DeError::custom(\
                         format!(\"{name}::{tag}: expected {n} elements, got {{}}\", s.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}::{tag}({}))\n\
             }},",
            (0..*n)
                .map(|i| format!(
                    "::serde::Deserialize::from_value(&s[{i}])\
                         .map_err(|e| e.at(\"{name}::{tag}\"))?"
                ))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}

/// `field: Deserialize::from_value(field(map, "field"))?` with context.
fn de_field(ctx: &str, f: &str, map_var: &str) -> String {
    format!(
        "{f}: ::serde::Deserialize::from_value(::serde::field({map_var}, \"{f}\"))\
             .map_err(|e| e.at(\"{ctx}.{f}\"))?"
    )
}

// --- token-stream parsing ---------------------------------------------------

fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let kw = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    let group = loop {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive shim: generic types are not supported ({name})")
            }
            Some(_) => continue,
            None => panic!("serde_derive shim: no braced body on {name}"),
        }
    };
    let shape = match kw.as_str() {
        "struct" => Shape::Struct(parse_named_fields(group.stream())),
        "enum" => Shape::Enum(parse_variants(group.stream())),
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    };
    (name, shape)
}

type Peekable = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skips `#[...]` attributes (including doc comments) and `pub` /
/// `pub(...)` visibility qualifiers.
fn skip_attrs_and_vis(toks: &mut Peekable) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists, returning the field names. Types
/// are skipped with angle-bracket depth tracking so commas inside generic
/// argument lists (e.g. `BTreeMap<K, V>`) don't split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after `{name}`, got {other:?}"),
        }
        fields.push(name);
        // Skip the type up to a comma at angle depth 0.
        let mut depth = 0i32;
        for t in toks.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected variant name, got {other:?}"),
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = match toks.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = match toks.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip to the next comma (covers discriminants, trailing commas).
        for t in toks.by_ref() {
            if let TokenTree::Punct(p) = t {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    variants
}

/// Counts tuple-variant fields: top-level (angle-depth 0) commas + 1,
/// ignoring a trailing comma.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for t in stream {
        any = true;
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if !any {
        return 0;
    }
    commas + 1 - usize::from(trailing_comma)
}
