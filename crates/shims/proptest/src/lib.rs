//! Offline stand-in for `proptest` (see `crates/shims/README.md`).
//!
//! The `proptest!` macro here expands each property into a plain `#[test]`
//! that samples its arguments from a deterministic RNG (seeded from the
//! test name) for `ProptestConfig::cases` iterations. There is no
//! shrinking; a failing case panics with the ordinary assert message.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-property configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Seeds from the test name, so each property gets a stable stream.
    pub fn new(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The produced type.
    type Value;
    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Full-range strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Any value of a primitive type (uniform over the full range).
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length range.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.start..self.len.end)
            };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Assert within a property (plain `assert!` here — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert-eq within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares properties as seeded-loop `#[test]`s.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(b in any::<bool>()) {
            prop_assert_eq!(b as u8 & 1, b as u8);
        }
    }
}
