//! Offline stand-in for `serde` (see `crates/shims/README.md`).
//!
//! The real serde abstracts over serializers with a visitor architecture;
//! this shim routes everything through one self-describing [`Value`] tree,
//! which is all the workspace needs (JSON + TOML round-trips of plain data
//! types). [`Serialize`]/[`Deserialize`] are implemented for the primitive
//! types, `String`, `Option`, `Vec`, tuples, and references; derived impls
//! for structs and enums come from the sibling `serde_derive` shim and use
//! the same externally-tagged enum representation as real serde.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value: the common currency between `Serialize`,
/// `Deserialize`, and the JSON / TOML front-ends.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Ordered map (insertion order is preserved — serialization is
    /// deterministic by construction).
    Map(Vec<(String, Value)>),
}

/// The one null value, borrowable with `'static` lifetime.
pub static NULL: Value = Value::Null;

impl Value {
    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a message plus a breadcrumb path.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
    path: Vec<String>,
}

impl DeError {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError {
            msg: msg.into(),
            path: Vec::new(),
        }
    }

    /// Type mismatch helper.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError::custom(format!("expected {what}, got {}", got.kind()))
    }

    /// Unknown enum variant helper.
    pub fn unknown_variant(ty: &str, tag: &str) -> Self {
        DeError::custom(format!("unknown variant `{tag}` for {ty}"))
    }

    /// Prepends a breadcrumb (`Struct.field`) to the error path.
    pub fn at(mut self, crumb: &str) -> Self {
        self.path.insert(0, crumb.to_string());
        self
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "{}: {}", self.path.join("."), self.msg)
        }
    }
}

impl std::error::Error for DeError {}

/// Serialization into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the self-describing value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- helpers used by the derive macro ---------------------------------------

/// Views a value as a struct's field map.
pub fn struct_map<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], DeError> {
    match v {
        Value::Map(m) => Ok(m),
        other => Err(DeError::expected("map", other).at(ty)),
    }
}

/// Fetches a field by name, yielding `Null` when absent (so `Option`
/// fields default to `None` and everything else reports a type error).
pub fn field<'a>(m: &'a [(String, Value)], name: &str) -> &'a Value {
    m.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Views a value as a sequence.
pub fn seq<'a>(v: &'a Value, ty: &str) -> Result<&'a [Value], DeError> {
    match v {
        Value::Seq(s) => Ok(s),
        other => Err(DeError::expected("sequence", other).at(ty)),
    }
}

/// Splits an externally-tagged enum value into `(variant_tag, payload)`.
/// A bare string is a unit variant (payload `Null`); a single-entry map is
/// a data-carrying variant.
pub fn enum_tag<'a>(v: &'a Value, ty: &str) -> Result<(&'a str, &'a Value), DeError> {
    match v {
        Value::Str(s) => Ok((s.as_str(), &NULL)),
        Value::Map(m) if m.len() == 1 => Ok((m[0].0.as_str(), &m[0].1)),
        other => Err(DeError::expected("variant string or single-key map", other).at(ty)),
    }
}

// --- primitive impls --------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

fn as_i128(v: &Value) -> Option<i128> {
    match v {
        Value::Int(i) => Some(*i as i128),
        Value::UInt(u) => Some(*u as i128),
        Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i128),
        _ => None,
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as i128;
                if wide >= 0 && wide > i64::MAX as i128 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(wide as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide = as_i128(v).ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Static-string fields (e.g. mode names) deserialize by leaking the
    /// owned string — acceptable for the handful of interned names this
    /// workspace reads back from disk.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        seq(v, "Vec")?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($len:expr; $($t:ident => $idx:tt),*) => {
        impl<$($t: Serialize),*> Serialize for ($($t,)*) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),*])
            }
        }
        impl<$($t: Deserialize),*> Deserialize for ($($t,)*) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = seq(v, "tuple")?;
                if s.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected tuple of {}, got {} elements", $len, s.len()
                    )));
                }
                Ok(($($t::from_value(&s[$idx])?,)*))
            }
        }
    };
}

impl_tuple!(1; A => 0);
impl_tuple!(2; A => 0, B => 1);
impl_tuple!(3; A => 0, B => 1, C => 2);
impl_tuple!(4; A => 0, B => 1, C => 2, D => 3);
impl_tuple!(5; A => 0, B => 1, C => 2, D => 3, E => 4);
impl_tuple!(6; A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
        assert!(bool::from_value(&Value::Bool(true)).unwrap());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
    }

    #[test]
    fn option_null_behaviour() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Value::Float(2.0)).unwrap(),
            Some(2.0)
        );
        assert_eq!(None::<f64>.to_value(), Value::Null);
    }

    #[test]
    fn vec_and_tuple_roundtrip() {
        let v = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        let back: Vec<(u64, String)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn missing_field_is_null() {
        let m = vec![("a".to_string(), Value::Int(1))];
        assert_eq!(field(&m, "b"), &Value::Null);
        assert_eq!(field(&m, "a"), &Value::Int(1));
    }

    #[test]
    fn out_of_range_integer_errors() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn enum_tag_shapes() {
        let unit = Value::Str("None".into());
        let (tag, inner) = enum_tag(&unit, "T").unwrap();
        assert_eq!(tag, "None");
        assert_eq!(inner, &Value::Null);
        let m = Value::Map(vec![("Flat".into(), Value::Map(vec![]))]);
        let (tag, _) = enum_tag(&m, "T").unwrap();
        assert_eq!(tag, "Flat");
    }
}
