//! Offline stand-in for `rand` 0.8 (see `crates/shims/README.md`).
//!
//! Provides exactly the deterministic subset this workspace uses:
//! [`rngs::SmallRng`] (xoshiro256++, the same algorithm real `rand` uses
//! for `SmallRng` on 64-bit targets), [`SeedableRng::seed_from_u64`]
//! (SplitMix64 expansion), and [`Rng::gen_range`] over integer and float
//! ranges. There are deliberately **no entropy sources** (`thread_rng`,
//! `from_entropy`): every stream in the workspace must be seeded.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (blanket-implemented for every `RngCore`).
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<G: RngCore>(self, rng: &mut G) -> T;
}

/// `[0, 1)` with 53 bits of precision.
fn unit_f64<G: RngCore>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` via the widening-multiply method.
fn below<G: RngCore>(rng: &mut G, span: u128) -> u128 {
    debug_assert!(span > 0);
    let x = rng.next_u64() as u128;
    (x * span) >> 64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<G: RngCore>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        // Floating rounding can land exactly on `end`; nudge back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<G: RngCore>(self, rng: &mut G) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        start + (end - start) * unit_f64(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<G: RngCore>(self, rng: &mut G) -> f32 {
        (self.start as f64..self.end as f64).sample(rng) as f32
    }
}

/// Seedable generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast RNG: xoshiro256++ (matches real `rand`'s 64-bit choice).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace treats `StdRng` and `SmallRng` identically.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same: Vec<u64> = (0..8).map(|_| c.gen_range(0..u64::MAX)).collect();
        let mut d = SmallRng::seed_from_u64(7);
        let other: Vec<u64> = (0..8).map(|_| d.gen_range(0..u64::MAX)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(3..7usize);
            assert!((3..7).contains(&u));
            let w = rng.gen_range(0..=0u32);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn float_range_in_bounds_and_uniform() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / n as f64).abs() < 0.03, "mean {}", sum / n as f64);
    }

    #[test]
    fn min_positive_range_stays_positive() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
            assert!(v.ln().is_finite());
        }
    }
}
