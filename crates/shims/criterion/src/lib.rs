//! Offline stand-in for `criterion` (see `crates/shims/README.md`).
//!
//! Runs each benchmark closure for roughly the configured measurement time
//! and prints mean wall-clock per iteration. No statistics, plots, or
//! comparisons — just enough to keep `cargo bench` useful offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== {name} ==");
        BenchmarkGroup {
            measurement: Duration::from_secs(2),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().0, Duration::from_secs(2), f);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup {
    measurement: Duration,
}

impl BenchmarkGroup {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by time only.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().0, self.measurement, f);
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.into().0, self.measurement, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Benchmark identifier (`name/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a name and a parameter.
    pub fn new(name: &str, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Declared throughput of one iteration (accepted, not reported).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the chosen number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, budget: Duration, mut f: F) {
    // Calibration pass: one iteration to size the measured run.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000_000) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<40} {mean_ns:>14.1} ns/iter   ({iters} iters)");
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),* $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)*
        }
    };
}

/// Declares `main` running benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}
